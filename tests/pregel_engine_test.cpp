#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

#include "apps/cardiac.h"
#include "apps/components.h"
#include "apps/degree_count.h"
#include "apps/pagerank.h"
#include "gen/mesh2d.h"
#include "gen/mesh3d.h"
#include "gen/powerlaw_cluster.h"
#include "graph/csr.h"
#include "metrics/cuts.h"
#include "partition/partitioner.h"
#include "pregel/engine.h"

namespace xdgp::pregel {
namespace {

using apps::ComponentsProgram;
using apps::DegreeCountProgram;
using apps::PageRankProgram;
using graph::DynamicGraph;
using graph::UpdateEvent;
using graph::VertexId;

metrics::Assignment hashAssign(const DynamicGraph& g, std::size_t k) {
  util::Rng rng(1);
  return partition::makePartitioner("HSH")->partition(graph::CsrGraph::fromGraph(g),
                                                      k, 1.1, rng);
}

EngineOptions plainOptions(std::size_t k) {
  EngineOptions options;
  options.numWorkers = k;
  return options;
}

// ------------------------------------------------------------ messaging

TEST(Engine, DegreeCountDeliversExactlyOncePerEdgeDirection) {
  DynamicGraph g = gen::mesh2d(8, 8);
  Engine<DegreeCountProgram> engine(g, hashAssign(g, 4), plainOptions(4));
  engine.runSupersteps(2);  // ping, then count
  g.forEachVertex([&](VertexId v) { EXPECT_EQ(engine.value(v), g.degree(v)); });
}

TEST(Engine, RemoteMessagesEqualTwiceTheCut) {
  // Every vertex pings every neighbour: each cut edge carries exactly two
  // remote messages, each internal edge two local ones.
  DynamicGraph g = gen::mesh2d(10, 10);
  const auto assignment = hashAssign(g, 4);
  const std::size_t cuts = metrics::cutEdges(g, assignment);
  Engine<DegreeCountProgram> engine(g, assignment, plainOptions(4));
  const SuperstepStats stats = engine.runSuperstep();
  EXPECT_EQ(stats.remoteMessages, 2 * cuts);
  EXPECT_EQ(stats.localMessages, 2 * (g.numEdges() - cuts));
  // Scalar payloads weigh one unit each.
  EXPECT_EQ(stats.remoteMessageUnits, stats.remoteMessages);
  EXPECT_EQ(stats.localMessageUnits, stats.localMessages);
  EXPECT_EQ(stats.lostMessages, 0u);
}

TEST(Engine, OddSuperstepsSendNothing) {
  DynamicGraph g = gen::mesh2d(4, 4);
  Engine<DegreeCountProgram> engine(g, hashAssign(g, 2), plainOptions(2));
  engine.runSuperstep();
  const SuperstepStats odd = engine.runSuperstep();
  EXPECT_EQ(odd.localMessages + odd.remoteMessages, 0u);
}

TEST(Engine, StatsHistoryAccumulates) {
  DynamicGraph g = gen::mesh2d(4, 4);
  Engine<DegreeCountProgram> engine(g, hashAssign(g, 2), plainOptions(2));
  engine.runSupersteps(5);
  EXPECT_EQ(engine.history().size(), 5u);
  EXPECT_EQ(engine.history()[3].superstep, 3u);
  EXPECT_EQ(engine.superstepIndex(), 5u);
}

// ------------------------------------------------------------ deferred migration

EngineOptions adaptiveOptions(std::size_t k, bool deferred) {
  EngineOptions options;
  options.numWorkers = k;
  options.adaptive = true;
  options.deferredMigration = deferred;
  options.partitioner.willingness = 0.5;
  return options;
}

TEST(Engine, DeferredMigrationNeverLosesMessages) {
  // THE §3 guarantee (Fig. 3 bottom): while the adaptive partitioner moves
  // thousands of vertices, every ping still arrives — counts equal degrees
  // at every odd superstep, and lostMessages stays zero.
  DynamicGraph g = gen::mesh3d(8, 8, 8);
  Engine<DegreeCountProgram> engine(g, hashAssign(g, 9), adaptiveOptions(9, true));
  std::size_t executed = 0;
  for (int round = 0; round < 15; ++round) {
    const SuperstepStats even = engine.runSuperstep();
    const SuperstepStats odd = engine.runSuperstep();
    executed += even.migrationsExecuted + odd.migrationsExecuted;
    ASSERT_EQ(even.lostMessages, 0u) << "round " << round;
    ASSERT_EQ(odd.lostMessages, 0u) << "round " << round;
    g.forEachVertex([&](VertexId v) {
      ASSERT_EQ(engine.value(v), g.degree(v)) << "vertex " << v;
    });
  }
  EXPECT_GT(executed, 50u) << "the partitioner must actually migrate";
}

TEST(Engine, InstantMigrationLosesMessages) {
  // Ablation (Fig. 3 top): moving vertices without the one-iteration wait
  // drops the messages already in flight towards the old worker.
  DynamicGraph g = gen::mesh3d(8, 8, 8);
  Engine<DegreeCountProgram> engine(g, hashAssign(g, 9), adaptiveOptions(9, false));
  std::size_t lost = 0, executed = 0;
  for (int step = 0; step < 30; ++step) {
    const SuperstepStats stats = engine.runSuperstep();
    lost += stats.lostMessages;
    executed += stats.migrationsExecuted;
  }
  EXPECT_GT(executed, 50u);
  EXPECT_GT(lost, 0u);
}

TEST(Engine, MigrationExecutesOneSuperstepAfterAnnouncement) {
  DynamicGraph g = gen::mesh3d(6, 6, 6);
  Engine<DegreeCountProgram> engine(g, hashAssign(g, 9), adaptiveOptions(9, true));
  const SuperstepStats first = engine.runSuperstep();
  EXPECT_EQ(first.migrationsExecuted, 0u);  // nothing announced before t=0
  const SuperstepStats second = engine.runSuperstep();
  EXPECT_EQ(second.migrationsExecuted, first.migrationsAnnounced);
}

TEST(Engine, AdaptivePartitioningReducesCutsAndRemoteTraffic) {
  // 12^3 keeps the per-partition headroom above k-1, the quota regime the
  // paper's experiments (>=1000 vertices, k=9) always operate in.
  DynamicGraph g = gen::mesh3d(12, 12, 12);
  const auto assignment = hashAssign(g, 9);
  Engine<DegreeCountProgram> engine(g, assignment, adaptiveOptions(9, true));
  const std::size_t cutsBefore = metrics::cutEdges(g, assignment);
  const std::size_t remoteBefore = engine.runSuperstep().remoteMessages;
  SuperstepStats last;
  for (int i = 0; i < 400 && !engine.partitionerConverged(); ++i) {
    last = engine.runSuperstep();
  }
  EXPECT_TRUE(engine.partitionerConverged());
  EXPECT_LT(engine.state().cutEdges(), cutsBefore / 2);
  // Even supersteps ping all neighbours; compare one post-convergence.
  if (engine.superstepIndex() % 2 != 0) engine.runSuperstep();
  const SuperstepStats after = engine.runSuperstep();
  EXPECT_LT(after.remoteMessages, remoteBefore / 2);
}

TEST(Engine, CapacityInvariantHoldsUnderAdaptivePartitioning) {
  DynamicGraph g = gen::mesh3d(8, 8, 8);
  Engine<DegreeCountProgram> engine(g, hashAssign(g, 9), adaptiveOptions(9, true));
  std::vector<std::size_t> bound(9);
  const auto balanced = static_cast<std::size_t>(
      std::ceil(static_cast<double>(g.numVertices()) / 9.0 * 1.1));
  for (std::size_t i = 0; i < 9; ++i) {
    bound[i] = std::max(balanced, engine.state().load(i));
  }
  for (int step = 0; step < 80; ++step) {
    engine.runSuperstep();
    for (std::size_t i = 0; i < 9; ++i) {
      ASSERT_LE(engine.state().load(i), bound[i]) << "superstep " << step;
    }
  }
}

// ------------------------------------------------------------ cost model

TEST(CostModel, DefaultsReproducePaperProfile) {
  // The Fig. 7 configuration (cardiac FEM, 63 workers, hash partitioning)
  // must show the paper's profile: message exchange >80 % of iteration
  // time, CPU noticeable but minor (~17 %).
  DynamicGraph g = gen::mesh3d(20, 20, 20);
  EngineOptions options;
  options.numWorkers = 63;
  Engine<apps::CardiacProgram> engine(g, hashAssign(g, 63), options);
  engine.runSuperstep();
  const SuperstepStats stats = engine.runSuperstep();  // messages now flowing
  const double comm = options.cost.commShare(stats);
  EXPECT_GT(comm, 0.75);
  EXPECT_LT(comm, 0.92);
  const double cpu = options.cost.alpha * stats.maxWorkerComputeUnits /
                     options.cost.timeFor(stats);
  EXPECT_GT(cpu, 0.05);
  EXPECT_LT(cpu, 0.25);
}

TEST(CostModel, TimeFormulaIsExact) {
  CostParams params;
  params.alpha = 2.0;
  params.betaRemote = 3.0;
  params.betaLocal = 0.5;
  params.gamma = 7.0;
  SuperstepStats stats;
  stats.maxWorkerComputeUnits = 10.0;
  stats.remoteMessageUnits = 4;
  stats.localMessageUnits = 6;
  stats.migrationsExecuted = 2;
  EXPECT_DOUBLE_EQ(params.timeFor(stats), 2.0 * 10 + 3.0 * 4 + 0.5 * 6 + 7.0 * 2);
}

TEST(CostModel, ComputeUnitsTrackBusiestWorker) {
  DynamicGraph g = gen::mesh2d(6, 6);
  Engine<DegreeCountProgram> engine(g, hashAssign(g, 4), plainOptions(4));
  const SuperstepStats stats = engine.runSuperstep();
  EXPECT_GT(stats.maxWorkerComputeUnits, 0.0);
  EXPECT_LE(stats.maxWorkerComputeUnits, stats.computeUnits);
  EXPECT_GE(stats.maxWorkerComputeUnits, stats.computeUnits / 4.0);
}

// ------------------------------------------------------------ mutations

TEST(Engine, IngestAddsVerticesAndEdgesBetweenSupersteps) {
  DynamicGraph g = gen::mesh2d(4, 4);
  Engine<DegreeCountProgram> engine(g, hashAssign(g, 2), plainOptions(2));
  engine.runSupersteps(2);
  const std::size_t applied = engine.ingest(
      {UpdateEvent::addEdge(0, 100), UpdateEvent::addEdge(100, 101)});
  EXPECT_EQ(applied, 2u);
  engine.runSupersteps(2);
  EXPECT_EQ(engine.value(100), 2u);  // degree of the streamed-in vertex
  EXPECT_EQ(engine.value(0), engine.graph().degree(0));
}

TEST(Engine, IngestRemovalKeepsStateConsistent) {
  DynamicGraph g = gen::mesh2d(6, 6);
  Engine<DegreeCountProgram> engine(g, hashAssign(g, 3), plainOptions(3));
  engine.runSupersteps(2);
  engine.ingest({UpdateEvent::removeVertex(7), UpdateEvent::removeEdge(0, 1)});
  EXPECT_EQ(engine.state().cutEdges(),
            metrics::cutEdges(engine.graph(), engine.state().assignment()));
  engine.runSupersteps(2);
  engine.graph().forEachVertex(
      [&](VertexId v) { EXPECT_EQ(engine.value(v), engine.graph().degree(v)); });
}

TEST(Engine, MessagesToRemovedVerticesExpire) {
  DynamicGraph g = gen::mesh2d(4, 4);
  Engine<DegreeCountProgram> engine(g, hashAssign(g, 2), plainOptions(2));
  engine.runSuperstep();  // pings queued for delivery at t+1
  engine.ingest({UpdateEvent::removeVertex(5)});
  const SuperstepStats stats = engine.runSuperstep();
  EXPECT_EQ(stats.lostMessages, 0u);  // queued inbox was cleared, not lost
  // Next even superstep: neighbours of the removed vertex send fewer pings.
  engine.runSupersteps(2);
  EXPECT_EQ(engine.value(4), engine.graph().degree(4));
}

TEST(Engine, FreezeBuffersUntilThaw) {
  // Fig. 9 semantics: the clique computation freezes topology; changes
  // buffer and apply in one batch when the result is out.
  DynamicGraph g = gen::mesh2d(5, 5);
  Engine<DegreeCountProgram> engine(g, hashAssign(g, 2), plainOptions(2));
  engine.freezeTopology();
  EXPECT_EQ(engine.ingest({UpdateEvent::addEdge(0, 200)}), 0u);
  EXPECT_EQ(engine.bufferedEvents(), 1u);
  EXPECT_FALSE(engine.graph().hasVertex(200));
  engine.runSupersteps(2);
  EXPECT_EQ(engine.thawTopology(), 1u);
  EXPECT_TRUE(engine.graph().hasEdge(0, 200));
  EXPECT_EQ(engine.bufferedEvents(), 0u);
}

TEST(Engine, MutationCountAppearsInNextSuperstepStats) {
  DynamicGraph g = gen::mesh2d(4, 4);
  Engine<DegreeCountProgram> engine(g, hashAssign(g, 2), plainOptions(2));
  engine.ingest({UpdateEvent::addEdge(0, 50)});
  const SuperstepStats stats = engine.runSuperstep();
  EXPECT_EQ(stats.mutationsApplied, 1u);
}

// ------------------------------------------------------------ applications

TEST(Engine, PageRankMatchesSerialReference) {
  DynamicGraph g = gen::mesh2d(6, 6);
  PageRankProgram program;
  program.setNumVertices(g.numVertices());
  Engine<PageRankProgram> engine(g, hashAssign(g, 4), plainOptions(4), program);
  engine.runSupersteps(60);

  // Serial reference of the same synchronous iteration.
  const std::size_t n = g.idBound();
  std::vector<double> rank(n, 1.0 / static_cast<double>(g.numVertices()));
  for (int iter = 0; iter < 59; ++iter) {
    std::vector<double> next(n, 0.0);
    g.forEachVertex([&](VertexId u) {
      const double share = rank[u] / static_cast<double>(g.degree(u));
      for (const VertexId v : g.neighbors(u)) next[v] += share;
    });
    g.forEachVertex([&](VertexId v) {
      next[v] = 0.15 / static_cast<double>(g.numVertices()) + 0.85 * next[v];
    });
    rank = std::move(next);
  }
  g.forEachVertex([&](VertexId v) { EXPECT_NEAR(engine.value(v), rank[v], 1e-9); });
}

TEST(Engine, PageRankMassIsConservedUnderMigration) {
  DynamicGraph g = gen::mesh3d(6, 6, 6);
  PageRankProgram program;
  program.setNumVertices(g.numVertices());
  Engine<PageRankProgram> engine(g, hashAssign(g, 9), adaptiveOptions(9, true),
                                 program);
  engine.runSupersteps(40);
  const double mass = engine.reduceValues(
      0.0, [](double acc, VertexId, double rank) { return acc + rank; });
  EXPECT_NEAR(mass, 1.0, 0.05);  // mesh is regular: mass stays ~1
}

TEST(Engine, ComponentsAgreeWithAndWithoutMigration) {
  util::Rng rng(7);
  DynamicGraph g = gen::powerlawCluster(400, 3, 0.2, rng);
  g.ensureVertex(450);          // isolated vertex: its own component
  g.addEdge(460, 461);          // tiny extra component

  Engine<ComponentsProgram> plain(g, hashAssign(g, 4), plainOptions(4));
  Engine<ComponentsProgram> adaptive(g, hashAssign(g, 4), adaptiveOptions(4, true));
  plain.runSupersteps(40);
  adaptive.runSupersteps(40);
  g.forEachVertex([&](VertexId v) {
    ASSERT_EQ(plain.value(v).component, adaptive.value(v).component)
        << "vertex " << v;
  });
  EXPECT_EQ(plain.value(450).component, 450u);
  EXPECT_EQ(plain.value(460).component, plain.value(461).component);
}

}  // namespace
}  // namespace xdgp::pregel
