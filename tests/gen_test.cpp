#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "gen/cdr_stream.h"
#include "gen/dataset_catalog.h"
#include "gen/erdos_renyi.h"
#include "gen/forest_fire.h"
#include "gen/mesh2d.h"
#include "gen/mesh3d.h"
#include "gen/parallel.h"
#include "gen/powerlaw_cluster.h"
#include "gen/rmat.h"
#include "gen/tweet_stream.h"
#include "graph/update_stream.h"

namespace xdgp::gen {
namespace {

using graph::DynamicGraph;
using graph::UpdateEvent;
using graph::VertexId;

/// Global clustering coefficient (3 * triangles / wedges), brute force.
double clusteringCoefficient(const DynamicGraph& g) {
  std::size_t triangles = 0, wedges = 0;
  g.forEachVertex([&](VertexId v) {
    const auto nbrs = g.neighbors(v);
    const std::size_t d = nbrs.size();
    if (d < 2) return;
    wedges += d * (d - 1) / 2;
    for (std::size_t i = 0; i < d; ++i) {
      for (std::size_t j = i + 1; j < d; ++j) {
        if (g.hasEdge(nbrs[i], nbrs[j])) ++triangles;
      }
    }
  });
  return wedges ? static_cast<double>(triangles) / static_cast<double>(wedges) : 0.0;
}

// ------------------------------------------------------------ mesh3d

TEST(Mesh3d, Table1RowsExact) {
  // The three synthetic FEMs of Table 1 reproduce to the edge.
  const DynamicGraph m1 = mesh3d(10, 10, 100);
  EXPECT_EQ(m1.numVertices(), 10'000u);
  EXPECT_EQ(m1.numEdges(), 27'900u);
  const DynamicGraph m2 = mesh3d(40, 40, 40);
  EXPECT_EQ(m2.numVertices(), 64'000u);
  EXPECT_EQ(m2.numEdges(), 187'200u);
}

TEST(Mesh3d, EdgeCountFormula) {
  const DynamicGraph g = mesh3d(3, 4, 5);
  EXPECT_EQ(g.numVertices(), 60u);
  EXPECT_EQ(g.numEdges(), 2u * 4 * 5 + 3 * 3 * 5 + 3 * 4 * 4);
}

TEST(Mesh3d, InteriorDegreeIsSix) {
  const DynamicGraph g = mesh3d(5, 5, 5);
  EXPECT_EQ(g.degree(mesh3dId(5, 5, 2, 2, 2)), 6u);  // interior
  EXPECT_EQ(g.degree(mesh3dId(5, 5, 0, 0, 0)), 3u);  // corner
}

TEST(Mesh3d, LatticeNeighborsAreAdjacent) {
  const DynamicGraph g = mesh3d(4, 4, 4);
  EXPECT_TRUE(g.hasEdge(mesh3dId(4, 4, 1, 1, 1), mesh3dId(4, 4, 2, 1, 1)));
  EXPECT_FALSE(g.hasEdge(mesh3dId(4, 4, 1, 1, 1), mesh3dId(4, 4, 2, 2, 1)));
}

TEST(Mesh3d, ApproxHitsTargetWithin5Percent) {
  for (const std::size_t n : {1'000u, 9'900u, 29'700u}) {
    const DynamicGraph g = mesh3dApprox(n);
    EXPECT_NEAR(static_cast<double>(g.numVertices()), static_cast<double>(n),
                0.05 * static_cast<double>(n));
  }
}

TEST(Mesh3d, DegenerateSizes) {
  EXPECT_EQ(mesh3d(1, 1, 1).numEdges(), 0u);
  EXPECT_EQ(mesh3d(2, 1, 1).numEdges(), 1u);
}

// ------------------------------------------------------------ mesh2d

TEST(Mesh2d, EdgeCountFormula) {
  const DynamicGraph g = mesh2d(4, 6);
  EXPECT_EQ(g.numVertices(), 24u);
  EXPECT_EQ(g.numEdges(), 3u * 6 + 4 * 5 + 3 * 5);
}

TEST(Mesh2d, TriangulatedDegreeBound) {
  const DynamicGraph g = mesh2d(10, 10);
  std::size_t maxDeg = 0;
  g.forEachVertex([&](VertexId v) { maxDeg = std::max(maxDeg, g.degree(v)); });
  EXPECT_LE(maxDeg, 6u);  // FEM family: bounded degree
  EXPECT_GT(clusteringCoefficient(g), 0.2);  // triangulated, not a grid
}

TEST(Mesh2d, WalshawSubstituteSizes) {
  const DynamicGraph g3elt = mesh2dApprox(4'720);
  EXPECT_NEAR(static_cast<double>(g3elt.numVertices()), 4'720.0, 120.0);
  // Average degree ~5.8, matching the 3elt mesh family (|E|=13722).
  EXPECT_NEAR(g3elt.averageDegree(), 5.8, 0.4);
}

// ------------------------------------------------------------ power law

TEST(PowerlawCluster, VertexAndEdgeCounts) {
  util::Rng rng(1);
  const DynamicGraph g = powerlawCluster(1'000, 10, 0.1, rng);
  EXPECT_EQ(g.numVertices(), 1'000u);
  // Exactly (n-m)*m attachments, a handful lost to duplicates (Table 1:
  // plc1000 has 9 879 < 9 900).
  EXPECT_LE(g.numEdges(), 9'900u);
  EXPECT_GE(g.numEdges(), 9'700u);
}

TEST(PowerlawCluster, DegreeDistributionIsSkewed) {
  util::Rng rng(2);
  const DynamicGraph g = powerlawCluster(3'000, 5, 0.1, rng);
  std::size_t maxDeg = 0;
  g.forEachVertex([&](VertexId v) { maxDeg = std::max(maxDeg, g.degree(v)); });
  // Hubs: max degree far above the mean (~10) — no homogeneous graph does this.
  EXPECT_GT(maxDeg, 60u);
}

TEST(PowerlawCluster, TriadStepRaisesClustering) {
  util::Rng rng(3);
  const DynamicGraph clustered = powerlawCluster(1'500, 5, 0.9, rng);
  const DynamicGraph plain = powerlawCluster(1'500, 5, 0.0, rng);
  EXPECT_GT(clusteringCoefficient(clustered), clusteringCoefficient(plain) * 1.5);
}

TEST(PowerlawCluster, MinimumDegreeIsM) {
  util::Rng rng(4);
  const DynamicGraph g = powerlawCluster(500, 4, 0.1, rng);
  // Every post-seed vertex attaches m edges (some may collapse as dupes,
  // but never below 1); seed vertices gain edges via attachment.
  g.forEachVertex([&](VertexId v) { EXPECT_GE(g.degree(v), 1u); });
}

TEST(PowerlawCluster, TargetVariantHitsEdgeBudget) {
  util::Rng rng(5);
  const std::size_t target = 103'689;  // wikivote-like
  const DynamicGraph g = powerlawClusterTarget(7'115, target, 0.1, rng);
  EXPECT_EQ(g.numVertices(), 7'115u);
  EXPECT_NEAR(static_cast<double>(g.numEdges()), static_cast<double>(target),
              0.03 * static_cast<double>(target));
}

TEST(PowerlawCluster, DeterministicBySeed) {
  util::Rng a(77), b(77);
  const DynamicGraph g1 = powerlawCluster(400, 6, 0.1, a);
  const DynamicGraph g2 = powerlawCluster(400, 6, 0.1, b);
  EXPECT_EQ(g1.numEdges(), g2.numEdges());
  g1.forEachEdge([&](VertexId u, VertexId v) { EXPECT_TRUE(g2.hasEdge(u, v)); });
}

// ------------------------------------------------------------ forest fire

TEST(ForestFire, AddsExactVertexCount) {
  util::Rng rng(6);
  DynamicGraph g = mesh3d(8, 8, 8);
  const std::size_t before = g.numVertices();
  const auto events = forestFireExtension(g, 51, ForestFireParams{}, rng);
  EXPECT_EQ(g.numVertices(), before + 51);
  std::size_t addVertexEvents = 0;
  for (const auto& e : events) {
    addVertexEvents += e.kind == UpdateEvent::Kind::kAddVertex;
  }
  EXPECT_EQ(addVertexEvents, 51u);
}

TEST(ForestFire, EdgeGrowthNearPaperRatio) {
  // Fig. 7b: +10 % vertices bring ~+30 % edges => ~3 edges per new vertex.
  util::Rng rng(7);
  DynamicGraph g = mesh3d(10, 10, 10);
  const std::size_t edgesBefore = g.numEdges();
  const std::size_t newV = 100;
  forestFireExtension(g, newV, ForestFireParams{}, rng);
  const double perVertex =
      static_cast<double>(g.numEdges() - edgesBefore) / static_cast<double>(newV);
  EXPECT_GE(perVertex, 1.5);
  EXPECT_LE(perVertex, 6.0);
}

TEST(ForestFire, EventsReplayToSameGraph) {
  util::Rng rng(8);
  DynamicGraph original = mesh2d(6, 6);
  DynamicGraph replayed = original;  // copy before growth
  const auto events = forestFireExtension(original, 20, ForestFireParams{}, rng);
  graph::applyUpdates(replayed, events);
  EXPECT_EQ(replayed.numVertices(), original.numVertices());
  EXPECT_EQ(replayed.numEdges(), original.numEdges());
  original.forEachEdge(
      [&](VertexId u, VertexId v) { EXPECT_TRUE(replayed.hasEdge(u, v)); });
}

TEST(ForestFire, EmptyGraphYieldsNothing) {
  util::Rng rng(9);
  DynamicGraph g;
  EXPECT_TRUE(forestFireExtension(g, 5, ForestFireParams{}, rng).empty());
}

TEST(ForestFire, BurnCapBoundsEdgesPerArrival) {
  util::Rng rng(10);
  DynamicGraph g = mesh3d(6, 6, 6);
  ForestFireParams params;
  params.forward = 0.99;  // aggressive fire
  params.maxBurn = 8;
  const auto events = forestFireExtension(g, 30, params, rng);
  // Each arrival links to at most maxBurn burned vertices. (Its final
  // degree may grow later when subsequent fires reach it.)
  std::size_t edgesOfCurrent = 0;
  for (const auto& e : events) {
    if (e.kind == UpdateEvent::Kind::kAddVertex) {
      edgesOfCurrent = 0;
    } else {
      ++edgesOfCurrent;
      ASSERT_LE(edgesOfCurrent, 8u);
    }
  }
}

// ------------------------------------------------------------ erdos renyi

TEST(ErdosRenyi, ExactEdgeCount) {
  util::Rng rng(11);
  const DynamicGraph g = erdosRenyi(100, 250, rng);
  EXPECT_EQ(g.numVertices(), 100u);
  EXPECT_EQ(g.numEdges(), 250u);
}

TEST(ErdosRenyi, ClampsToCompleteGraph) {
  util::Rng rng(12);
  const DynamicGraph g = erdosRenyi(5, 1'000, rng);
  EXPECT_EQ(g.numEdges(), 10u);
}

// ------------------------------------------------------------ tweet stream

TEST(TweetStream, DiurnalShape) {
  TweetStreamParams params;
  const TweetStreamGenerator gen(params, util::Rng(13));
  // Evening peak well above the pre-dawn trough, as in Fig. 8's red line.
  EXPECT_GT(gen.rateAt(20.0), 2.0 * gen.rateAt(4.0));
  EXPECT_GT(gen.rateAt(4.0), 0.0);
}

TEST(TweetStream, EventCountTracksMeanRate) {
  TweetStreamParams params;
  params.users = 1'000;
  params.meanRate = 5.0;
  params.hours = 2.0;
  TweetStreamGenerator gen(params, util::Rng(14));
  const auto events = gen.generate();
  const double expected = 5.0 * 2.0 * 3600.0;
  EXPECT_NEAR(static_cast<double>(events.size()), expected, 0.35 * expected);
}

TEST(TweetStream, EventsAreOrderedAndValid) {
  TweetStreamParams params;
  params.users = 500;
  params.meanRate = 3.0;
  params.hours = 1.0;
  TweetStreamGenerator gen(params, util::Rng(15));
  const auto events = gen.generate();
  ASSERT_FALSE(events.empty());
  double last = 0.0;
  for (const auto& e : events) {
    EXPECT_EQ(e.kind, UpdateEvent::Kind::kAddEdge);
    EXPECT_GE(e.timestamp, last);
    EXPECT_LT(e.u, 500u);
    EXPECT_LT(e.v, 500u);
    EXPECT_NE(e.u, e.v);
    last = e.timestamp;
  }
}

TEST(TweetStream, PopularAccountsDominateMentions) {
  TweetStreamParams params;
  params.users = 2'000;
  params.meanRate = 10.0;
  params.hours = 1.0;
  params.withinCommunityProb = 0.0;  // isolate the global celebrity channel
  TweetStreamGenerator gen(params, util::Rng(16));
  const auto events = gen.generate();
  std::size_t topMentions = 0;
  for (const auto& e : events) topMentions += e.v < 20;  // top-20 accounts
  // Zipf: the top 1% of accounts receive a large share of all mentions.
  EXPECT_GT(static_cast<double>(topMentions) / static_cast<double>(events.size()),
            0.15);
}

TEST(TweetStream, MentionsAreMostlyWithinCommunities) {
  TweetStreamParams params;
  params.users = 2'000;
  params.meanRate = 10.0;
  params.hours = 1.0;
  params.communitySize = 100;
  params.withinCommunityProb = 0.85;
  TweetStreamGenerator gen(params, util::Rng(17));
  const auto events = gen.generate();
  std::size_t within = 0;
  for (const auto& e : events) within += e.u / 100 == e.v / 100;
  // 85% targeted in-circle plus the occasional celebrity that happens to
  // share the author's circle.
  EXPECT_GT(static_cast<double>(within) / static_cast<double>(events.size()), 0.8);
}

// ------------------------------------------------------------ CDR stream

TEST(CdrStream, InitialGraphMatchesParams) {
  CdrStreamParams params;
  params.initialSubscribers = 2'000;
  CdrStreamGenerator gen(params, util::Rng(17));
  EXPECT_EQ(gen.initialGraph().numVertices(), 2'000u);
  EXPECT_NEAR(gen.initialGraph().averageDegree(), params.meanDegree, 1.5);
}

TEST(CdrStream, WeeklyChurnMatchesPaperRates) {
  CdrStreamParams params;
  params.initialSubscribers = 5'000;
  CdrStreamGenerator gen(params, util::Rng(18));
  const CdrWeek week = gen.nextWeek();
  // Paper: 8 % additions, 4 % deletions per week.
  EXPECT_NEAR(static_cast<double>(week.verticesAdded), 0.08 * 5'000, 25.0);
  EXPECT_NEAR(static_cast<double>(week.verticesRemoved), 0.04 * 5'000, 25.0);
}

TEST(CdrStream, EventsReplayConsistently) {
  CdrStreamParams params;
  params.initialSubscribers = 1'000;
  CdrStreamGenerator gen(params, util::Rng(19));
  DynamicGraph replica = gen.initialGraph();
  for (int w = 0; w < 3; ++w) {
    const CdrWeek week = gen.nextWeek();
    graph::applyUpdates(replica, week.events);
  }
  // The generator's internal graph is reachable through one more week's
  // initial population: compare via counts after replay.
  const CdrWeek probe = gen.nextWeek();
  graph::applyUpdates(replica, probe.events);
  EXPECT_GT(replica.numVertices(), 1'000u);  // net growth at +8/-4 %
  EXPECT_EQ(gen.weeksGenerated(), 4u);
}

TEST(CdrStream, TimestampsLieInsideWeek) {
  CdrStreamParams params;
  params.initialSubscribers = 800;
  CdrStreamGenerator gen(params, util::Rng(20));
  (void)gen.nextWeek();
  const CdrWeek second = gen.nextWeek();
  for (const auto& e : second.events) {
    EXPECT_GE(e.timestamp, 1.0);
    EXPECT_LT(e.timestamp, 2.0);
  }
}

// ------------------------------------------------------------ parallel

/// Bit-identical: same id space, same counts, same per-vertex adjacency in
/// the same order. This is the determinism contract of gen/parallel.h —
/// threads decide who computes a chunk, never what it contains.
void expectBitIdentical(const DynamicGraph& a, const DynamicGraph& b) {
  ASSERT_EQ(a.idBound(), b.idBound());
  ASSERT_EQ(a.numVertices(), b.numVertices());
  ASSERT_EQ(a.numEdges(), b.numEdges());
  for (VertexId v = 0; v < a.idBound(); ++v) {
    ASSERT_EQ(a.hasVertex(v), b.hasVertex(v)) << "vertex " << v;
    if (!a.hasVertex(v)) continue;
    const auto na = a.neighbors(v);
    const auto nb = b.neighbors(v);
    ASSERT_EQ(na.size(), nb.size()) << "degree of " << v;
    for (std::size_t i = 0; i < na.size(); ++i) {
      ASSERT_EQ(na[i], nb[i]) << "slot " << i << " of vertex " << v;
    }
  }
}

TEST(ParallelGen, LockstepAcrossThreadCounts) {
  for (const std::uint64_t seed : {42ULL, 7ULL}) {
    const DynamicGraph mesh1 = mesh3dParallel(12, 13, 14, 1);
    const DynamicGraph er1 = erdosRenyiParallel(4'000, 20'000, seed, 1);
    RmatParams rp;
    rp.scale = 12;
    const DynamicGraph rmat1 = rmatParallel(rp, seed, 1);
    const DynamicGraph plc1 = powerlawClusterParallel(5'000, 6, 0.1, seed, 1);
    for (const std::size_t threads : {2u, 8u}) {
      expectBitIdentical(mesh1, mesh3dParallel(12, 13, 14, threads));
      expectBitIdentical(er1, erdosRenyiParallel(4'000, 20'000, seed, threads));
      expectBitIdentical(rmat1, rmatParallel(rp, seed, threads));
      expectBitIdentical(plc1,
                         powerlawClusterParallel(5'000, 6, 0.1, seed, threads));
    }
  }
}

TEST(ParallelGen, Mesh3dMatchesSerialLattice) {
  // The lattice has no RNG: the parallel build must reproduce the serial
  // vertex/edge set exactly (adjacency order may differ — fromEdges sorts).
  const DynamicGraph serial = mesh3d(9, 10, 11);
  const DynamicGraph parallel = mesh3dParallel(9, 10, 11, 8);
  ASSERT_EQ(parallel.numVertices(), serial.numVertices());
  ASSERT_EQ(parallel.numEdges(), serial.numEdges());
  serial.forEachEdge(
      [&](VertexId u, VertexId v) { EXPECT_TRUE(parallel.hasEdge(u, v)); });
}

TEST(ParallelGen, Mesh3dApproxHitsTarget) {
  const DynamicGraph g = mesh3dApproxParallel(29'700, 4);
  EXPECT_NEAR(static_cast<double>(g.numVertices()), 29'700.0, 0.05 * 29'700.0);
}

TEST(ParallelGen, ErdosRenyiLandsNearTarget) {
  // Ball-dropping drops collisions/self-loops: |E| lands slightly under the
  // target, by about the collision mass (~|E|²/n² relative).
  const DynamicGraph g = erdosRenyiParallel(10'000, 50'000, 42, 4);
  EXPECT_EQ(g.numVertices(), 10'000u);
  EXPECT_LE(g.numEdges(), 50'000u);
  EXPECT_GE(g.numEdges(), 48'500u);
}

TEST(ParallelGen, RmatIsSkewedAndNearTarget) {
  RmatParams rp;
  rp.scale = 13;
  const DynamicGraph g = rmatParallel(rp, 42, 4);
  EXPECT_EQ(g.numVertices(), std::size_t{1} << 13);
  const std::size_t target = rp.edgeFactor << rp.scale;
  EXPECT_LE(g.numEdges(), target);
  EXPECT_GE(g.numEdges(), target * 8 / 10);  // Graph500 skew: a few % dupes
  std::size_t maxDeg = 0;
  g.forEachVertex([&](VertexId v) { maxDeg = std::max(maxDeg, g.degree(v)); });
  EXPECT_GT(maxDeg, 100u);  // quadrant skew concentrates mass on low ids
}

TEST(ParallelGen, PowerlawIsSkewedWithBoundedEdgeLoss) {
  const DynamicGraph g = powerlawClusterParallel(10'000, 7, 0.1, 42, 4);
  EXPECT_EQ(g.numVertices(), 10'000u);
  // Each vertex v contributes min(v, m) out-slots; duplicates shrink |E|.
  EXPECT_LE(g.numEdges(), 7u * 10'000u);
  EXPECT_GE(g.numEdges(), 6u * 10'000u);
  std::size_t maxDeg = 0;
  g.forEachVertex([&](VertexId v) { maxDeg = std::max(maxDeg, g.degree(v)); });
  EXPECT_GT(maxDeg, 60u);  // copy-model tail, like the Holme–Kim reference
}

TEST(ParallelGen, PowerlawTriadKnobRaisesClustering) {
  const DynamicGraph clustered = powerlawClusterParallel(1'500, 5, 0.9, 3, 4);
  const DynamicGraph plain = powerlawClusterParallel(1'500, 5, 0.0, 3, 4);
  // The triad knob multiplies the triangle count severalfold; global
  // transitivity rises more modestly than the serial Holme–Kim's because the
  // copy model's wedge count also grows with p (triad targets are one copy
  // level deeper, i.e. more hub-biased).
  std::size_t triClustered = 0, triPlain = 0;
  const auto countTriangles = [](const DynamicGraph& g, std::size_t& out) {
    g.forEachVertex([&](VertexId v) {
      const auto nbrs = g.neighbors(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
          if (g.hasEdge(nbrs[i], nbrs[j])) ++out;
        }
      }
    });
  };
  countTriangles(clustered, triClustered);
  countTriangles(plain, triPlain);
  EXPECT_GT(triClustered, 2 * triPlain);
  EXPECT_GT(clusteringCoefficient(clustered), clusteringCoefficient(plain) * 1.1);
}

TEST(ParallelGen, SeedChangesTheGraph) {
  const DynamicGraph a = powerlawClusterParallel(2'000, 5, 0.1, 1, 2);
  const DynamicGraph b = powerlawClusterParallel(2'000, 5, 0.1, 2, 2);
  std::size_t differing = 0;
  a.forEachEdge([&](VertexId u, VertexId v) { differing += !b.hasEdge(u, v); });
  EXPECT_GT(differing, 0u);
}

TEST(ParallelGen, ResolveThreads) {
  EXPECT_GE(resolveThreads(0), 1u);
  EXPECT_EQ(resolveThreads(5), 5u);
}

// ------------------------------------------------------------ catalog

TEST(DatasetCatalog, HasAllTwelveTable1Rows) {
  EXPECT_EQ(datasetCatalog().size(), 12u);
  EXPECT_NO_THROW(datasetByName("64kcube"));
  EXPECT_NO_THROW(datasetByName("epinion"));
  EXPECT_THROW(datasetByName("nonsense"), std::out_of_range);
}

TEST(DatasetCatalog, UnscaledEntriesMatchPaperSizes) {
  util::Rng rng(21);
  for (const auto& spec : datasetCatalog()) {
    if (spec.generatedVertices != spec.paperVertices) continue;  // scaled rows
    if (spec.paperVertices > 200'000) continue;                  // keep test fast
    const DynamicGraph g = spec.make(rng);
    EXPECT_NEAR(static_cast<double>(g.numVertices()),
                static_cast<double>(spec.paperVertices),
                0.03 * static_cast<double>(spec.paperVertices))
        << spec.name;
    EXPECT_NEAR(static_cast<double>(g.numEdges()),
                static_cast<double>(spec.paperEdges),
                0.05 * static_cast<double>(spec.paperEdges))
        << spec.name;
  }
}

TEST(DatasetCatalog, TypesAreLabelled) {
  for (const auto& spec : datasetCatalog()) {
    EXPECT_TRUE(spec.type == "FEM" || spec.type == "pwlaw") << spec.name;
    EXPECT_FALSE(spec.source.empty());
  }
}

}  // namespace
}  // namespace xdgp::gen
