// Delta-publication suite: the O(changed) snapshot path must be
// *observationally identical* to the full-rebuild path it replaced.
//
//   - Fuzzed lockstep: random churn (edge add/remove, vertex add/remove,
//     unknown ids, growth past the initial id bound) streams through a
//     session while a SnapshotBuilder cuts delta snapshots; after every
//     window each delta snapshot is compared element-for-element against a
//     freshly rebuilt AssignmentSnapshot — partitionOf, hasVertex, degree,
//     neighbour lists, cutDegree — over the whole id space plus a margin of
//     out-of-range ids. Both the overlay path and the compaction path must
//     be exercised by the run.
//   - The same lockstep under LPA elastic resizes (grow mid-run, shrink
//     mid-run) with a threshold that never compacts after the first build,
//     so every post-resize window is served through the overlay.
//   - Crash/restore: a service that crashes mid-stream and restores from
//     its checkpoint must end up publishing a snapshot element-identical to
//     an unfaulted reference run AND to a full rebuild of its own engine.
//   - Structural sharing: adjacent snapshots share the base CSR pointer and
//     clean assignment chunks; the build that pushes the pending set past
//     maxOverlayFraction * idBound (strictly) compacts, and older snapshots
//     keep serving their frozen state (persistence).
//   - The O(k) balanceReport overloads agree with the O(|V|) array scan
//     field-for-field (doubles bit-equal) after churn, mask variant included.
//
// Registered under the `serve` label so the ThreadSanitizer CI job runs it.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "api/pipeline.h"
#include "api/stream.h"
#include "api/workload_registry.h"
#include "core/engine.h"
#include "core/touch_tracker.h"
#include "gen/mesh2d.h"
#include "graph/update_stream.h"
#include "metrics/balance.h"
#include "serve/service.h"
#include "serve/snapshot.h"
#include "serve/snapshot_builder.h"
#include "util/rng.h"

namespace xdgp::serve {
namespace {

using graph::DynamicGraph;
using graph::UpdateEvent;
using graph::VertexId;

/// Element-for-element equivalence over the id space plus a margin of ids
/// neither snapshot covers (both must answer "unknown" identically).
/// `orderedNeighbors` demands identical neighbour-list ORDER too — valid
/// when both snapshots view the same live graph (a delta view must be
/// indistinguishable from a full rebuild); across two independently mutated
/// graphs (e.g. recovered vs reference service) only the neighbour SETS are
/// specified, so the lists are compared sorted.
void expectSnapshotsEqual(const AssignmentSnapshot& delta,
                          const AssignmentSnapshot& full,
                          const std::string& where,
                          bool orderedNeighbors = true) {
  ASSERT_EQ(delta.idBound(), full.idBound()) << where;
  const auto bound = static_cast<VertexId>(delta.idBound() + 3);
  for (VertexId v = 0; v < bound; ++v) {
    ASSERT_EQ(delta.hasVertex(v), full.hasVertex(v)) << where << " v=" << v;
    ASSERT_EQ(delta.partitionOf(v), full.partitionOf(v)) << where << " v=" << v;
    ASSERT_EQ(delta.degree(v), full.degree(v)) << where << " v=" << v;
    std::vector<VertexId> dn(delta.neighbors(v).begin(),
                             delta.neighbors(v).end());
    std::vector<VertexId> fn(full.neighbors(v).begin(),
                             full.neighbors(v).end());
    if (!orderedNeighbors) {
      std::sort(dn.begin(), dn.end());
      std::sort(fn.begin(), fn.end());
    }
    ASSERT_EQ(dn, fn) << where << " v=" << v;
    ASSERT_EQ(delta.cutDegree(v), full.cutDegree(v)) << where << " v=" << v;
  }
}

/// Exact (bit-level for the doubles) equality of two balance reports — the
/// O(k) overloads promise the same arithmetic as the array scan, not an
/// approximation of it.
void expectBalanceEq(const metrics::BalanceReport& fast,
                     const metrics::BalanceReport& scan,
                     const std::string& where) {
  EXPECT_EQ(fast.k, scan.k) << where;
  EXPECT_EQ(fast.totalVertices, scan.totalVertices) << where;
  EXPECT_EQ(fast.minLoad, scan.minLoad) << where;
  EXPECT_EQ(fast.maxLoad, scan.maxLoad) << where;
  EXPECT_EQ(fast.imbalance, scan.imbalance) << where;
  EXPECT_EQ(fast.densification, scan.densification) << where;
}

/// Random churn against a bounded id span: edge adds dominate (they also
/// auto-create unknown endpoints, which is how the stream grows the graph
/// past its initial id bound), with vertex removals, re-adds, and edge
/// removals mixed in. Ids are drawn from [0, idSpan), deliberately wider
/// than the seed graph, so removals of never-seen ids and duplicate adds
/// (both no-ops) are part of the mix.
std::vector<UpdateEvent> fuzzEvents(util::Rng& rng, std::size_t count,
                                    VertexId idSpan) {
  std::vector<UpdateEvent> events;
  events.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto u = static_cast<VertexId>(rng.index(idSpan));
    const auto v = static_cast<VertexId>(rng.index(idSpan));
    switch (rng.index(8)) {
      case 0: events.push_back(UpdateEvent::removeVertex(u)); break;
      case 1: events.push_back(UpdateEvent::addVertex(u)); break;
      case 2: events.push_back(UpdateEvent::removeEdge(u, v)); break;
      default: events.push_back(UpdateEvent::addEdge(u, v)); break;
    }
  }
  return events;
}

api::Session fuzzSession(core::EngineKind kind, std::size_t k) {
  core::AdaptiveOptions adaptive;
  adaptive.k = k;
  adaptive.engine = kind;
  return api::Pipeline::fromGraph(gen::mesh2d(10, 10))
      .initial("HSH")
      .k(k)
      .adaptive(adaptive)
      .start();
}

// ------------------------------------------------------ fuzzed lockstep

TEST(SnapshotDelta, FuzzedChurnMatchesFullRebuildEveryWindow) {
  api::Session session = fuzzSession(core::EngineKind::kGreedy, 4);
  const core::Engine& engine = session.engine();

  util::Rng rng(20140707);
  api::StreamOptions options;
  options.windowEvents = 15;
  api::Streamer streamer(graph::UpdateStream(fuzzEvents(rng, 240, 130)),
                         options);

  // A fraction between "compact every window" and "never compact": the run
  // must exercise both the overlay path and the compaction path.
  SnapshotBuilder builder(0.6);
  std::uint64_t epoch = 0;
  bool sawOverlay = false;
  bool sawCompaction = false;
  while (std::optional<api::WindowBatch> batch = streamer.next()) {
    core::TouchSet touched;
    (void)session.streamWindow(*batch, options, &touched);
    builder.note(touched);
    const std::string where = "window " + std::to_string(batch->index);

    const AssignmentSnapshot delta = builder.build(
        ++epoch, engine.graph(), engine.state().assignment(), engine.k(),
        SnapshotStats{});
    if (builder.lastBuildCompacted()) {
      sawCompaction = true;
      EXPECT_EQ(delta.adjacency().overlaySize(), 0u) << where;
    } else {
      sawOverlay = true;
      EXPECT_GT(delta.adjacency().overlaySize(), 0u) << where;
    }
    const AssignmentSnapshot full(epoch, engine.graph(),
                                  engine.state().assignment(), engine.k(),
                                  SnapshotStats{});
    expectSnapshotsEqual(delta, full, where);

    expectBalanceEq(
        metrics::balanceReport(engine.state()),
        metrics::balanceReport(engine.state().assignment(), engine.k()), where);
  }
  EXPECT_GT(epoch, 10u);
  EXPECT_TRUE(sawOverlay) << "fuzz run never took the overlay path";
  EXPECT_TRUE(sawCompaction) << "fuzz run never compacted";
}

TEST(SnapshotDelta, LpaElasticResizesStayLockstepThroughTheOverlay) {
  api::Session session = fuzzSession(core::EngineKind::kLpa, 4);
  core::Engine& engine = session.engine();

  util::Rng rng(19);
  api::StreamOptions options;
  options.windowEvents = 12;
  api::Streamer streamer(graph::UpdateStream(fuzzEvents(rng, 96, 120)),
                         options);

  // Threshold past any possible pending set: after the first (always
  // compacting) build every window — including the grow and shrink windows
  // and the drain that follows the shrink — is served through the overlay.
  SnapshotBuilder builder(2.0);
  std::uint64_t epoch = 0;
  std::shared_ptr<const graph::CsrGraph> sharedBase;
  while (std::optional<api::WindowBatch> batch = streamer.next()) {
    if (batch->index == 2) engine.growPartitions(2);
    if (batch->index == 5) {
      engine.shrinkPartitions(std::vector<graph::PartitionId>{4, 5});
    }
    core::TouchSet touched;
    (void)session.streamWindow(*batch, options, &touched);
    builder.note(touched);
    const std::string where = "window " + std::to_string(batch->index);

    const AssignmentSnapshot delta = builder.build(
        ++epoch, engine.graph(), engine.state().assignment(), engine.k(),
        SnapshotStats{});
    if (epoch == 1) {
      EXPECT_TRUE(builder.lastBuildCompacted());
      sharedBase = delta.adjacency().base();
    } else {
      EXPECT_FALSE(builder.lastBuildCompacted()) << where;
      EXPECT_EQ(delta.adjacency().base().get(), sharedBase.get()) << where;
    }
    const AssignmentSnapshot full(epoch, engine.graph(),
                                  engine.state().assignment(), engine.k(),
                                  SnapshotStats{});
    expectSnapshotsEqual(delta, full, where);

    // Elastic-k balance: the O(k) masked overload vs the masked array scan.
    expectBalanceEq(metrics::balanceReport(engine.state(), engine.activeMask()),
                    metrics::balanceReport(engine.state().assignment(),
                                           engine.activeMask()),
                    where);
  }
  EXPECT_GT(epoch, 6u);
  EXPECT_EQ(engine.k(), 6u);
  EXPECT_EQ(engine.activeK(), 4u);
}

// ----------------------------------------------------- crash / restore

api::Workload churnWorkload() {
  api::WorkloadConfig config;
  config.overrides = {{"vertices", 400}, {"ticks", 4}, {"rate", 40}};
  return api::WorkloadRegistry::instance().make("CHURN", config);
}

PartitionService churnService(ServeOptions options = {}) {
  api::Workload workload = churnWorkload();
  options.stream = workload.suggested;
  core::AdaptiveOptions adaptive;
  adaptive.k = 4;
  return PartitionService(std::move(workload), "HSH", adaptive,
                          std::move(options));
}

TEST(SnapshotDelta, CrashRestorePublishesTheReferenceState) {
  const std::string dir = testing::TempDir() + "snapshot_delta_crash";
  std::filesystem::remove_all(dir);

  PartitionService reference = churnService();
  reference.run();

  ServeOptions faultedOptions;
  faultedOptions.checkpointDir = dir;
  faultedOptions.faults = FaultPlan::parse("crash@window=2");
  PartitionService faulted = churnService(std::move(faultedOptions));
  EXPECT_THROW(faulted.run(), InjectedCrash);

  // The restored service starts from a fresh builder: its construction
  // publish must compact (there is no base to share with), then the
  // replayed tail goes back through the delta path.
  PartitionService recovered = PartitionService::restore(dir);
  EXPECT_TRUE(recovered.snapshotBuilder().lastBuildCompacted());
  recovered.run();

  const SnapshotBoard::Ref recoveredSnap = recovered.snapshot();
  const SnapshotBoard::Ref referenceSnap = reference.snapshot();
  ASSERT_NE(recoveredSnap, nullptr);
  ASSERT_NE(referenceSnap, nullptr);
  expectSnapshotsEqual(*recoveredSnap, *referenceSnap,
                       "recovered vs reference", /*orderedNeighbors=*/false);

  // And against a from-scratch rebuild of the recovered engine itself.
  const core::Engine& engine = recovered.session().engine();
  const AssignmentSnapshot full(recoveredSnap->epoch(), engine.graph(),
                                engine.state().assignment(), engine.k(),
                                SnapshotStats{});
  expectSnapshotsEqual(*recoveredSnap, full, "recovered vs full rebuild");
}

// -------------------------------------------------- structural sharing

TEST(SnapshotSharing, BaseIsSharedUntilThePendingSetExceedsTheFraction) {
  DynamicGraph g = gen::mesh2d(2, 5);  // idBound 10: fraction 0.5 -> threshold 5
  const metrics::Assignment assignment(g.idBound(), 0);
  SnapshotBuilder builder(0.5);

  // First build: nothing to share yet — always a compaction.
  const AssignmentSnapshot s1 =
      builder.build(1, g, assignment, 2, SnapshotStats{});
  EXPECT_TRUE(builder.lastBuildCompacted());
  ASSERT_NE(s1.adjacency().base(), nullptr);
  EXPECT_EQ(s1.adjacency().overlaySize(), 0u);

  // Mutate the live graph and publish the change through the overlay. The
  // new snapshot sees the removal; the old snapshot keeps its frozen state.
  const std::size_t degreeBefore = g.degree(0);
  const VertexId nbr = g.neighbors(0)[0];
  ASSERT_TRUE(g.removeEdge(0, nbr));
  core::TouchSet first;
  first.adjacency = {0, nbr};
  first.assignment = {0};
  builder.note(first);
  const AssignmentSnapshot s2 =
      builder.build(2, g, assignment, 2, SnapshotStats{});
  EXPECT_FALSE(builder.lastBuildCompacted());
  EXPECT_EQ(s2.adjacency().base().get(), s1.adjacency().base().get());
  EXPECT_EQ(s2.adjacency().overlaySize(), 2u);
  EXPECT_EQ(s1.degree(0), degreeBefore);
  EXPECT_EQ(s2.degree(0), degreeBefore - 1);

  // Pending grows to exactly fraction * idBound: the threshold is strict,
  // so this build still shares.
  core::TouchSet second;
  second.adjacency = {2, 3, 4};  // pending: {0, nbr, 2, 3, 4} = 5 ids
  builder.note(second);
  const AssignmentSnapshot s3 =
      builder.build(3, g, assignment, 2, SnapshotStats{});
  EXPECT_FALSE(builder.lastBuildCompacted());
  EXPECT_EQ(builder.pendingOverlay(), 5u);
  EXPECT_EQ(s3.adjacency().base().get(), s1.adjacency().base().get());

  // One more id crosses the threshold: compaction — fresh base, empty
  // overlay, pending cleared.
  core::TouchSet third;
  third.adjacency = {5};
  builder.note(third);
  const AssignmentSnapshot s4 =
      builder.build(4, g, assignment, 2, SnapshotStats{});
  EXPECT_TRUE(builder.lastBuildCompacted());
  EXPECT_NE(s4.adjacency().base().get(), s1.adjacency().base().get());
  EXPECT_EQ(s4.adjacency().overlaySize(), 0u);
  EXPECT_EQ(builder.pendingOverlay(), 0u);
}

TEST(SnapshotSharing, CowAssignmentCopiesOnlyDirtyAndGrownChunks) {
  metrics::Assignment values(2'500, 1);  // 3 chunks, the last partial
  CowAssignmentBuilder builder;
  const CowAssignment a = builder.build(values);
  ASSERT_EQ(a.chunkCount(), 3u);
  EXPECT_EQ(a.size(), 2'500u);

  // One touched vertex: its chunk is copied, the other two are shared.
  values[5] = 3;
  builder.touch(5);
  const CowAssignment b = builder.build(values);
  EXPECT_NE(b.chunk(0).get(), a.chunk(0).get());
  EXPECT_EQ(b.chunk(1).get(), a.chunk(1).get());
  EXPECT_EQ(b.chunk(2).get(), a.chunk(2).get());
  EXPECT_EQ(a.at(5), 1u);  // persistence: the old view is frozen
  EXPECT_EQ(b.at(5), 3u);

  // Growth with no touches: only chunks the id space grew into are
  // refreshed — the partial tail chunk plus the brand-new one.
  values.resize(3'100, 2);
  const CowAssignment c = builder.build(values);
  ASSERT_EQ(c.chunkCount(), 4u);
  EXPECT_EQ(c.chunk(0).get(), b.chunk(0).get());
  EXPECT_EQ(c.chunk(1).get(), b.chunk(1).get());
  EXPECT_NE(c.chunk(2).get(), b.chunk(2).get());
  EXPECT_EQ(c.at(3'099), 2u);
  EXPECT_EQ(c.at(3'100), graph::kNoPartition);  // past the id space
  EXPECT_EQ(b.at(2'600), graph::kNoPartition);  // the old view never grew
}

}  // namespace
}  // namespace xdgp::serve
