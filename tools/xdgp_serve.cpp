// xdgp_serve: the long-lived partition service as a binary. One ingest
// thread streams a workload's churn through the adaptive engine window by
// window; N query threads concurrently answer partition-lookup / neighbour /
// route-cost queries against the latest published AssignmentSnapshot —
// lock-free, never blocked by ingest. Optionally checkpoints every window
// and restores from a checkpoint directory, and can inject deterministic
// faults (serve::FaultPlan) to rehearse crash/recovery:
//
//   xdgp_serve --workload=CHURN --k=5 --checkpoint-dir=ckpt
//   xdgp_serve --workload=CHURN --k=5 --checkpoint-dir=ckpt
//              --fault="crash@window=3"        # dies with exit code 3
//   xdgp_serve --restore=ckpt --out=final.part # recovers and finishes
//
// Exit codes: 0 success, 1 error, 2 empty timeline, 3 injected crash
// (checkpoint intact on disk — restart with --restore to recover).

#include <atomic>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "api/engine_registry.h"
#include "api/workload_registry.h"
#include "partition/assignment_io.h"
#include "serve/service.h"
#include "util/flags.h"
#include "util/table.h"
#include "util/timer.h"

using namespace xdgp;

namespace {

/// Query load: a deterministic id walk over the snapshot's id space, mixing
/// the four read paths. Returns the number of queries answered; `sink`
/// defeats dead-code elimination.
std::size_t queryLoop(const serve::SnapshotBoard& board,
                      const std::atomic<bool>& stop, std::uint64_t& sink) {
  std::size_t queries = 0;
  std::uint64_t local = 0;
  graph::VertexId v = 0;
  while (!stop.load(std::memory_order_acquire)) {
    const serve::SnapshotBoard::Ref snap = board.current();
    if (!snap || snap->torn() || snap->idBound() == 0) continue;
    const auto bound = static_cast<graph::VertexId>(snap->idBound());
    v = static_cast<graph::VertexId>((v + 1) % bound);
    const graph::VertexId u = static_cast<graph::VertexId>((v * 7 + 3) % bound);
    local += snap->partitionOf(v);
    local += static_cast<std::uint64_t>(snap->routeCost(u, v) + 1);
    local += snap->cutDegree(v);
    for (const graph::VertexId nbr : snap->neighbors(v)) local += nbr;
    queries += 4;
  }
  sink = local;
  return queries;
}

int serveMain(util::Flags& flags) {
  const std::string restoreDir = flags.getString("restore", "");
  const auto queryThreads =
      static_cast<std::size_t>(flags.getInt("query-threads", 2));
  const auto engineThreads = static_cast<std::size_t>(flags.getInt("threads", 1));
  const std::string outPath = flags.getString("out", "");
  const std::string jsonlPath = flags.getString("jsonl", "");

  // PartitionService is pinned in place (the SnapshotBoard's atomics make it
  // immovable), so it lives behind a unique_ptr; `new T(prvalue)` constructs
  // it directly via guaranteed copy elision.
  std::unique_ptr<serve::PartitionService> service;
  if (!restoreDir.empty()) {
    flags.finish();
    service.reset(new serve::PartitionService(
        serve::PartitionService::restore(restoreDir, engineThreads)));
    std::cout << "restored from " << restoreDir << " at window "
              << service->nextWindow() << "\n";
  } else {
    const std::string code = flags.getString("workload", "CHURN");
    const api::WorkloadInfo& info = api::WorkloadRegistry::instance().info(code);
    api::WorkloadConfig config = api::workloadConfigFromFlags(flags, info);
    config.eventsPath = flags.getString("events", "");
    config.graphPath = flags.getString("graph", "");
    api::Workload workload = api::WorkloadRegistry::instance().make(code, config);

    serve::ServeOptions options;
    options.stream = workload.suggested;
    if (flags.has("window")) {
      options.stream.windowSpan = flags.getDouble("window", 0.0);
      options.stream.windowEvents = 0;
    }
    if (flags.has("window-events")) {
      options.stream.windowEvents =
          static_cast<std::size_t>(flags.getInt("window-events", 0));
      options.stream.windowSpan = 0.0;
    }
    options.stream.expirySpan =
        flags.getDouble("expiry", options.stream.expirySpan);
    options.stream.maxWindows =
        static_cast<std::size_t>(flags.getInt("max-windows", 0));
    options.checkpointDir = flags.getString("checkpoint-dir", "");
    options.checkpointEvery =
        static_cast<std::size_t>(flags.getInt("checkpoint-every", 1));
    options.faults = serve::FaultPlan::parse(flags.getString("fault", ""));
    options.resizes = serve::parseResizePlan(flags.getString("resize", ""));

    const std::string strategy = flags.getString("strategy", "HSH");
    core::AdaptiveOptions adaptive;
    adaptive.k = static_cast<std::size_t>(flags.getInt("k", 9));
    adaptive.capacityFactor = flags.getDouble("capacity", 1.1);
    adaptive.willingness = flags.getDouble("s", 0.5);
    adaptive.threads = engineThreads;
    adaptive.seed = config.seed;
    adaptive.engine =
        api::EngineRegistry::instance().info(flags.getString("engine", "greedy"))
            .kind;
    adaptive.lpaBalanceFactor = flags.getDouble("lpa-balance", 1.0);
    adaptive.lpaMigrationBudget =
        static_cast<std::size_t>(flags.getInt("lpa-budget", 0));
    flags.finish();

    service.reset(new serve::PartitionService(std::move(workload), strategy,
                                              adaptive, options));
  }

  // Query threads hammer the board for the whole ingest run; the board is
  // the only thing they share with the ingest thread.
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  std::vector<std::size_t> answered(queryThreads, 0);
  std::vector<std::uint64_t> sinks(queryThreads, 0);
  readers.reserve(queryThreads);
  for (std::size_t t = 0; t < queryThreads; ++t) {
    readers.emplace_back([&, t] {
      answered[t] = queryLoop(service->board(), stop, sinks[t]);
    });
  }

  const util::WallTimer timer;
  int exitCode = 0;
  try {
    service->run();
  } catch (const serve::InjectedCrash& crash) {
    exitCode = 3;
    std::cerr << "xdgp_serve: " << crash.what() << "\n";
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();

  if (exitCode == 3) return exitCode;  // checkpoint intact; timeline is moot

  const api::TimelineReport& timeline = service->timeline();
  timeline.renderText(std::cout);
  std::size_t totalQueries = 0;
  for (const std::size_t n : answered) totalQueries += n;
  const serve::SnapshotBoard::Ref snap = service->snapshot();
  std::cout << totalQueries << " queries answered by " << queryThreads
            << " reader(s) over " << util::fmt(timer.seconds(), 2)
            << "s; final snapshot epoch " << (snap ? snap->epoch() : 0)
            << ", cut ratio "
            << util::fmt(snap ? snap->stats().cutRatio : 0.0, 3) << "\n";

  if (!outPath.empty()) {
    const core::Engine& engine = service->session().engine();
    // Live k, not options().k: elastic resizes leave the frozen options
    // value stale, and the assignment indexes the grown id space.
    partition::writeAssignment(engine.state().assignment(), engine.k(),
                               outPath);
    std::cout << "  assignment written to " << outPath << "\n";
  }
  if (!jsonlPath.empty()) {
    std::ofstream out(jsonlPath);
    if (!out) throw std::runtime_error("serve: cannot open " + jsonlPath);
    timeline.renderJsonl(out);
    std::cout << "  timeline written to " << jsonlPath << "\n";
  }
  return timeline.empty() ? 2 : exitCode;
}

void printUsage() {
  std::cerr
      << "usage: xdgp_serve --workload=<code> [--<param>=... per workload]\n"
         "                  [--strategy=HSH --k=9 --s=0.5 --capacity=1.1]\n"
         "                  [--engine=greedy|lpa --lpa-balance=1.0"
         " --lpa-budget=0]\n"
         "                  [--resize=\"grow@2:4;shrink@4:6+7\"]  (lpa only)\n"
         "                  [--window=<span> | --window-events=<n>]"
         " [--expiry=<span>] [--max-windows=<n>]\n"
         "                  [--threads=<engine>] [--query-threads=<readers>]\n"
         "                  [--checkpoint-dir=<dir>] [--checkpoint-every=<n>]\n"
         "                  [--fault=\"kill@worker=1,superstep=3;"
         "drop@lane=0:2,superstep=4;crash@window=2\"]\n"
         "                  [--out=<part file>] [--jsonl=<file>]\n"
         "       xdgp_serve --restore=<dir> [--threads=..."
         " --query-threads=... --out=... --jsonl=...]\n"
         "workloads:\n";
  for (const api::WorkloadInfo* info : api::WorkloadRegistry::instance().infos()) {
    std::cerr << "  " << info->code << "  " << info->summary << "\n";
  }
  std::cerr << "engines:\n";
  for (const api::EngineInfo* info : api::EngineRegistry::instance().infos()) {
    std::cerr << "  " << info->code << "  " << info->summary << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    util::Flags flags(argc, argv);
    if (flags.has("help")) {
      printUsage();
      return 0;
    }
    return serveMain(flags);
  } catch (const std::exception& error) {
    std::cerr << "xdgp_serve: " << error.what() << "\n";
    return 1;
  }
}
