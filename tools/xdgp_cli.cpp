// xdgp command-line tool: generate Table-1 datasets, partition edge-list
// files with any registered strategy (vertex or edge side), run the
// adaptive algorithm to convergence, and stream a registered workload
// through the windowed drain -> apply -> converge loop — the
// downstream-user entry point that needs no C++.
//
// The partition/adapt/stream/epartition subcommands are thin shells over
// api::Pipeline, Session::stream, and api::edgePartition; the strategy and
// workload menus are printed straight from api::PartitionerRegistry,
// api::EdgePartitionerRegistry, and api::WorkloadRegistry — the CLI learns
// new strategies and workloads the moment they are registered.
//
// Usage:
//   xdgp_cli --cmd=generate --dataset=64kcube --out=mesh.txt
//   xdgp_cli --cmd=partition --graph=mesh.txt --strategy=DGR --k=9
//            --out=initial.part
//   xdgp_cli --cmd=adapt --graph=mesh.txt --assignment=initial.part
//            --out=final.part --s=0.5
//   xdgp_cli --cmd=adapt --graph=mesh.txt --strategy=HSH --k=9 --out=final.part
//   xdgp_cli --cmd=epartition --graph=mesh.txt --strategy=HDRF --k=8
//            --out=mesh.epart
//   xdgp_cli --cmd=emetrics --epart=mesh.epart --graph=mesh.txt
//   xdgp_cli --cmd=stream --workload=CDR --k=5 --csv=timeline.csv
//   xdgp_cli --cmd=stream --workload=TWEET --users=10000 --hours=12
//            --jsonl=windows.jsonl

#include <fstream>
#include <iostream>

#include "api/edge_partitioner_registry.h"
#include "api/engine_registry.h"
#include "api/partitioner_registry.h"
#include "api/pipeline.h"
#include "api/workload_registry.h"
#include "epartition/epart_io.h"
#include "gen/dataset_catalog.h"
#include "graph/io.h"
#include "metrics/replication.h"
#include "partition/assignment_io.h"
#include "util/flags.h"
#include "util/table.h"
#include "util/timer.h"

using namespace xdgp;

namespace {

int generateCmd(util::Flags& flags) {
  const std::string dataset = flags.getString("dataset", "64kcube");
  const std::string out = flags.getString("out", dataset + ".txt");
  util::Rng rng(flags.getUint64("seed", 42));
  flags.finish();
  const gen::DatasetSpec& spec = gen::datasetByName(dataset);
  util::WallTimer timer;
  const graph::DynamicGraph g = spec.make(rng);
  graph::writeEdgeList(g, out);
  std::cout << dataset << ": |V|=" << g.numVertices() << " |E|=" << g.numEdges()
            << " -> " << out << " (" << util::fmt(timer.seconds(), 1) << "s)\n";
  return 0;
}

int partitionCmd(util::Flags& flags) {
  const std::string graphPath = flags.getString("graph", "");
  const std::string strategy = flags.getString("strategy", "DGR");
  const auto k = static_cast<std::size_t>(flags.getInt("k", 9));
  const double capacity = flags.getDouble("capacity", 1.1);
  const std::string out = flags.getString("out", "assignment.part");
  const std::uint64_t seed = flags.getUint64("seed", 42);
  flags.finish();
  if (graphPath.empty()) throw std::runtime_error("partition: --graph required");

  const api::RunReport report = api::Pipeline::fromEdgeList(graphPath)
                                    .initial(strategy)
                                    .k(k)
                                    .capacityFactor(capacity)
                                    .seed(seed)
                                    .run();
  report.renderText(std::cout);
  partition::writeAssignment(report.assignment, report.k, out);
  std::cout << "  written to " << out << "\n";
  return 0;
}

/// Reads the engine-selection flags shared by adapt and stream into
/// `options`. The --engine code is validated against the EngineRegistry, so
/// an unknown code fails with the full menu in the message.
void engineFromFlags(util::Flags& flags, core::AdaptiveOptions& options) {
  const std::string code = flags.getString("engine", "greedy");
  options.engine = api::EngineRegistry::instance().info(code).kind;
  options.lpaBalanceFactor = flags.getDouble("lpa-balance", 1.0);
  options.lpaMigrationBudget =
      static_cast<std::size_t>(flags.getInt("lpa-budget", 0));
}

int adaptCmd(util::Flags& flags) {
  const std::string graphPath = flags.getString("graph", "");
  const std::string assignmentPath = flags.getString("assignment", "");
  const bool strategySupplied = flags.has("strategy");
  const std::string strategy = flags.getString("strategy", "HSH");
  const std::string out = flags.getString("out", "adapted.part");
  const std::string balance = flags.getString("balance", "vertices");
  const bool kSupplied = flags.has("k");
  const auto k = static_cast<std::size_t>(flags.getInt("k", 9));
  const double capacity = flags.getDouble("capacity", 1.1);
  core::AdaptiveOptions options;
  options.willingness = flags.getDouble("s", 0.5);
  options.convergenceWindow =
      static_cast<std::size_t>(flags.getInt("window", 30));
  options.threads = static_cast<std::size_t>(flags.getInt("threads", 1));
  engineFromFlags(flags, options);
  const std::uint64_t seed = flags.getUint64("seed", 42);
  const auto maxIterations =
      static_cast<std::size_t>(flags.getInt("max-iterations", 20'000));
  flags.finish();
  if (graphPath.empty()) throw std::runtime_error("adapt: --graph required");
  if (balance == "edges") options.balanceMode = core::BalanceMode::kEdges;
  else if (balance != "vertices") throw std::runtime_error("adapt: bad --balance");

  api::Pipeline pipeline = api::Pipeline::fromEdgeList(graphPath);
  if (!assignmentPath.empty()) {
    if (strategySupplied) {
      throw std::runtime_error(
          "adapt: --assignment and --strategy are mutually exclusive");
    }
    pipeline.initialFromFile(assignmentPath);
    // An explicit --k that disagrees with the file's k is a hard error in
    // the pipeline; only forward the flag when the user actually set it.
    if (kSupplied) pipeline.k(k);
  } else {
    pipeline.initial(strategy).k(k);
  }
  const api::RunReport report = pipeline.capacityFactor(capacity)
                                    .seed(seed)
                                    .adaptive(options)
                                    .maxIterations(maxIterations)
                                    .run();
  report.renderText(std::cout);
  partition::writeAssignment(report.assignment, report.k, out);
  std::cout << "  written to " << out << "\n";
  return report.converged ? 0 : 2;
}

/// The replication-factor report both edge subcommands print: key=value
/// lines so the CI round-trip smoke (and any script) can parse it.
void printReplicationReport(const metrics::ReplicationReport& report) {
  std::cout << "  replication_factor=" << util::fmt(report.replicationFactor, 4)
            << "\n  vertex_cut_ratio=" << util::fmt(report.vertexCutRatio, 4)
            << "\n  edge_imbalance=" << util::fmt(report.edgeImbalance, 4)
            << "\n  copy_imbalance=" << util::fmt(report.copyImbalance, 4)
            << "\n  edge_loads=[" << report.minEdgeLoad << ", "
            << report.maxEdgeLoad << "]\n";
}

int epartitionCmd(util::Flags& flags) {
  const std::string graphPath = flags.getString("graph", "");
  const std::string strategy = flags.getString("strategy", "DBH");
  const auto k = static_cast<std::size_t>(flags.getInt("k", 8));
  const double balanceCap = flags.getDouble("balance-cap", 1.05);
  const std::string out = flags.getString("out", "assignment.epart");
  const std::uint64_t seed = flags.getUint64("seed", 42);
  flags.finish();
  if (graphPath.empty()) throw std::runtime_error("epartition: --graph required");

  const graph::DynamicGraph g = graph::readEdgeList(graphPath);
  util::WallTimer timer;
  const epartition::EdgeAssignment assignment =
      api::edgePartition(g, strategy, k, balanceCap, seed);
  const metrics::ReplicationReport report = metrics::replicationReport(assignment);
  std::cout << "epartition " << strategy << " (k=" << k << "): |V|="
            << g.numVertices() << " |E|=" << assignment.numEdges() << " ("
            << util::fmt(timer.seconds(), 2) << "s)\n";
  printReplicationReport(report);
  epartition::writeEdgeAssignment(assignment, out);
  std::cout << "  written to " << out << "\n";
  return 0;
}

int emetricsCmd(util::Flags& flags) {
  const std::string epartPath = flags.getString("epart", "");
  const std::string graphPath = flags.getString("graph", "");
  flags.finish();
  if (epartPath.empty()) throw std::runtime_error("emetrics: --epart required");

  const epartition::EdgeAssignment assignment =
      epartition::readEdgeAssignment(epartPath);
  if (!graphPath.empty()) {
    // Cross-check against the source graph: the file must cover its edges
    // exactly (count equality is enough once every line parsed in range —
    // writeEdgeAssignment emits each edge once).
    const graph::DynamicGraph g = graph::readEdgeList(graphPath);
    if (g.numEdges() != assignment.numEdges()) {
      throw std::runtime_error(
          "emetrics: " + epartPath + " covers " +
          std::to_string(assignment.numEdges()) + " edges but " + graphPath +
          " has " + std::to_string(g.numEdges()));
    }
  }
  std::cout << "emetrics " << epartPath << " (k=" << assignment.k()
            << "): |E|=" << assignment.numEdges() << "\n";
  printReplicationReport(metrics::replicationReport(assignment));
  return 0;
}

int streamCmd(util::Flags& flags) {
  const std::string code = flags.getString("workload", "CDR");
  const api::WorkloadInfo& info = api::WorkloadRegistry::instance().info(code);

  // Every param the workload declares is a flag: --users, --subscribers, ...
  api::WorkloadConfig config = api::workloadConfigFromFlags(flags, info);
  config.eventsPath = flags.getString("events", "");
  config.graphPath = flags.getString("graph", "");
  api::Workload workload = api::WorkloadRegistry::instance().make(code, config);

  api::StreamOptions options = workload.suggested;
  if (flags.has("window")) {
    options.windowSpan = flags.getDouble("window", options.windowSpan);
    options.windowEvents = 0;
  }
  if (flags.has("window-events")) {
    options.windowEvents = static_cast<std::size_t>(
        flags.getInt("window-events", 0));
    options.windowSpan = 0.0;
  }
  options.expirySpan = flags.getDouble("expiry", options.expirySpan);
  options.maxWindows =
      static_cast<std::size_t>(flags.getInt("max-windows", 0));
  options.adapt = !flags.getBool("static", false);

  const std::string strategy = flags.getString("strategy", "HSH");
  const auto k = static_cast<std::size_t>(flags.getInt("k", 9));
  const double capacity = flags.getDouble("capacity", 1.1);
  core::AdaptiveOptions adaptiveOptions;
  adaptiveOptions.willingness = flags.getDouble("s", 0.5);
  adaptiveOptions.threads = static_cast<std::size_t>(flags.getInt("threads", 1));
  engineFromFlags(flags, adaptiveOptions);
  const std::string csvPath = flags.getString("csv", "");
  const std::string jsonlPath = flags.getString("jsonl", "");
  flags.finish();

  api::Session session = api::Pipeline::fromGraph(std::move(workload.initial))
                             .initial(strategy)
                             .k(k)
                             .capacityFactor(capacity)
                             .seed(config.seed)
                             .adaptive(adaptiveOptions)
                             .start();
  api::TimelineReport timeline =
      session.stream(std::move(workload.stream), options);
  timeline.workload = code;
  timeline.renderText(std::cout);

  const auto writeTo = [&](const std::string& path, auto render) {
    std::ofstream out(path);
    if (!out) throw std::runtime_error("stream: cannot open " + path);
    render(out);
    std::cout << "  written to " << path << "\n";
  };
  if (!csvPath.empty()) {
    writeTo(csvPath, [&](std::ostream& out) { timeline.renderCsv(out); });
  }
  if (!jsonlPath.empty()) {
    writeTo(jsonlPath, [&](std::ostream& out) { timeline.renderJsonl(out); });
  }
  return timeline.empty() ? 2 : 0;
}

void printUsage() {
  std::cerr << "usage: xdgp_cli"
               " --cmd=generate|partition|adapt|epartition|emetrics|stream"
               " [options]\n"
               "  generate:   --dataset=<table1 name> --out=<edge list>\n"
               "  partition:  --graph=<edge list> --strategy=<code> --k=9"
               " --out=<part file>\n"
               "  adapt:      --graph=<edge list> [--assignment=<part file> |"
               " --strategy=<code> --k=9] --s=0.5 [--balance=edges]\n"
               "              [--engine=greedy|lpa --lpa-balance=1.0"
               " --lpa-budget=0] --out=<part file>\n"
               "  epartition: --graph=<edge list> --strategy=<edge code> --k=8"
               " [--balance-cap=1.05] --out=<epart file>\n"
               "  emetrics:   --epart=<epart file> [--graph=<edge list>]\n"
               "  stream:     --workload=<code> [--<param>=... per workload]"
               " [--strategy=HSH --k=9 --s=0.5]\n"
               "              [--engine=greedy|lpa --lpa-balance=1.0"
               " --lpa-budget=0]\n"
               "              [--window=<span> | --window-events=<n>]"
               " [--expiry=<span>] [--max-windows=<n>]\n"
               "              [--static] [--csv=<file>] [--jsonl=<file>]"
               " (REPLAY: --events=<file> [--graph=<edge list>])\n"
               "vertex strategies:\n";
  for (const api::StrategyInfo* info :
       api::PartitionerRegistry::instance().infos()) {
    std::cerr << "  " << info->code << (info->respectsCapacity ? "  " : " ~")
              << " " << info->summary << "\n";
  }
  std::cerr << "  (~ = balance is statistical, not capacity-guaranteed)\n"
               "edge strategies (epartition):\n";
  for (const api::EdgeStrategyInfo* info :
       api::EdgePartitionerRegistry::instance().infos()) {
    std::cerr << "  " << info->code << (info->respectsBalanceCap ? "  " : " ~")
              << " " << info->summary << "\n";
  }
  std::cerr << "  (~ = edge balance is statistical, no hard cap)\n"
               "engines (adapt, stream):\n";
  for (const api::EngineInfo* info : api::EngineRegistry::instance().infos()) {
    std::cerr << "  " << info->code << (info->elasticK ? " +" : "  ") << " "
              << info->summary << "\n";
  }
  std::cerr << "  (+ = supports elastic k: live grow/shrink of the partition"
               " set)\n"
               "workloads:\n";
  for (const api::WorkloadInfo* info : api::WorkloadRegistry::instance().infos()) {
    std::cerr << "  " << info->code << "  " << info->summary << "\n";
    for (const api::WorkloadParamSpec& spec : info->params) {
      std::cerr << "      --" << spec.name << "=" << util::fmt(spec.defaultValue, 2)
                << "  " << spec.summary << "\n";
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    util::Flags flags(argc, argv);
    const std::string cmd = flags.getString("cmd", "");
    if (cmd == "generate") return generateCmd(flags);
    if (cmd == "partition") return partitionCmd(flags);
    if (cmd == "adapt") return adaptCmd(flags);
    if (cmd == "epartition") return epartitionCmd(flags);
    if (cmd == "emetrics") return emetricsCmd(flags);
    if (cmd == "stream") return streamCmd(flags);
    printUsage();
    return 1;
  } catch (const std::exception& error) {
    std::cerr << "xdgp_cli: " << error.what() << "\n";
    return 1;
  }
}
