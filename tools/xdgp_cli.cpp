// xdgp command-line tool: generate Table-1 datasets, partition edge-list
// files with any of the library's strategies, and run the adaptive algorithm
// to convergence — the downstream-user entry point that needs no C++.
//
// Usage:
//   xdgp_cli --cmd=generate --dataset=64kcube --out=mesh.txt
//   xdgp_cli --cmd=partition --graph=mesh.txt --strategy=DGR --k=9
//            --out=initial.part
//   xdgp_cli --cmd=adapt --graph=mesh.txt --assignment=initial.part
//            --out=final.part --s=0.5
//   xdgp_cli --cmd=adapt --graph=mesh.txt --strategy=HSH --k=9 --out=final.part

#include <iostream>

#include "core/adaptive_engine.h"
#include "gen/dataset_catalog.h"
#include "graph/csr.h"
#include "graph/io.h"
#include "metrics/balance.h"
#include "partition/assignment_io.h"
#include "partition/multilevel_partitioner.h"
#include "partition/partitioner.h"
#include "util/flags.h"
#include "util/table.h"
#include "util/timer.h"

using namespace xdgp;

namespace {

metrics::Assignment makeInitial(const graph::DynamicGraph& g,
                                const std::string& strategy, std::size_t k,
                                double capacity, std::uint64_t seed) {
  util::Rng rng(seed);
  const graph::CsrGraph csr = graph::CsrGraph::fromGraph(g);
  if (strategy == "METIS") {
    return partition::MultilevelPartitioner{}.partition(csr, k, capacity, rng);
  }
  return partition::makePartitioner(strategy)->partition(csr, k, capacity, rng);
}

void report(const graph::DynamicGraph& g, const metrics::Assignment& assignment,
            std::size_t k) {
  const auto balance = metrics::balanceReport(assignment, k);
  std::cout << "  cut ratio: " << util::fmt(metrics::cutRatio(g, assignment), 4)
            << "  (" << metrics::cutEdges(g, assignment) << " of " << g.numEdges()
            << " edges)\n"
            << "  imbalance: " << util::fmt(balance.imbalance, 3)
            << "  (max load " << balance.maxLoad << ", min " << balance.minLoad
            << ")\n";
}

int generateCmd(util::Flags& flags) {
  const std::string dataset = flags.getString("dataset", "64kcube");
  const std::string out = flags.getString("out", dataset + ".txt");
  util::Rng rng(static_cast<std::uint64_t>(flags.getInt("seed", 42)));
  flags.finish();
  const gen::DatasetSpec& spec = gen::datasetByName(dataset);
  util::WallTimer timer;
  const graph::DynamicGraph g = spec.make(rng);
  graph::writeEdgeList(g, out);
  std::cout << dataset << ": |V|=" << g.numVertices() << " |E|=" << g.numEdges()
            << " -> " << out << " (" << util::fmt(timer.seconds(), 1) << "s)\n";
  return 0;
}

int partitionCmd(util::Flags& flags) {
  const std::string graphPath = flags.getString("graph", "");
  const std::string strategy = flags.getString("strategy", "DGR");
  const auto k = static_cast<std::size_t>(flags.getInt("k", 9));
  const double capacity = flags.getDouble("capacity", 1.1);
  const std::string out = flags.getString("out", "assignment.part");
  const auto seed = static_cast<std::uint64_t>(flags.getInt("seed", 42));
  flags.finish();
  if (graphPath.empty()) throw std::runtime_error("partition: --graph required");

  const graph::DynamicGraph g = graph::readEdgeList(graphPath);
  util::WallTimer timer;
  const metrics::Assignment assignment = makeInitial(g, strategy, k, capacity, seed);
  std::cout << strategy << " over " << g.numVertices() << " vertices ("
            << util::fmt(timer.seconds(), 2) << "s)\n";
  report(g, assignment, k);
  partition::writeAssignment(assignment, k, out);
  std::cout << "  written to " << out << "\n";
  return 0;
}

int adaptCmd(util::Flags& flags) {
  const std::string graphPath = flags.getString("graph", "");
  const std::string assignmentPath = flags.getString("assignment", "");
  const std::string strategy = flags.getString("strategy", "HSH");
  const std::string out = flags.getString("out", "adapted.part");
  const std::string balance = flags.getString("balance", "vertices");
  auto k = static_cast<std::size_t>(flags.getInt("k", 9));
  const double capacity = flags.getDouble("capacity", 1.1);
  core::AdaptiveOptions options;
  options.willingness = flags.getDouble("s", 0.5);
  options.capacityFactor = capacity;
  options.convergenceWindow =
      static_cast<std::size_t>(flags.getInt("window", 30));
  options.threads = static_cast<std::size_t>(flags.getInt("threads", 1));
  options.seed = static_cast<std::uint64_t>(flags.getInt("seed", 42));
  const auto maxIterations =
      static_cast<std::size_t>(flags.getInt("max-iterations", 20'000));
  flags.finish();
  if (graphPath.empty()) throw std::runtime_error("adapt: --graph required");
  if (balance == "edges") options.balanceMode = core::BalanceMode::kEdges;
  else if (balance != "vertices") throw std::runtime_error("adapt: bad --balance");

  graph::DynamicGraph g = graph::readEdgeList(graphPath);
  metrics::Assignment initial;
  if (!assignmentPath.empty()) {
    auto loaded = partition::readAssignment(assignmentPath);
    k = loaded.k;
    initial = std::move(loaded.assignment);
    initial.resize(g.idBound(), graph::kNoPartition);
  } else {
    initial = makeInitial(g, strategy, k, capacity, options.seed);
  }
  options.k = k;

  std::cout << "initial (" << (assignmentPath.empty() ? strategy : assignmentPath)
            << ", k=" << k << "):\n";
  report(g, initial, k);

  util::WallTimer timer;
  core::AdaptiveEngine engine(std::move(g), std::move(initial), options);
  const core::ConvergenceResult result = engine.runToConvergence(maxIterations);
  std::cout << "adapted (" << result.iterationsRun << " iterations, converged at "
            << result.convergenceIteration << ", "
            << util::fmt(timer.seconds(), 2) << "s"
            << (result.converged ? "" : ", NOT converged") << "):\n";
  report(engine.graph(), engine.state().assignment(), k);
  partition::writeAssignment(engine.state().assignment(), k, out);
  std::cout << "  written to " << out << "\n";
  return result.converged ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    util::Flags flags(argc, argv);
    const std::string cmd = flags.getString("cmd", "");
    if (cmd == "generate") return generateCmd(flags);
    if (cmd == "partition") return partitionCmd(flags);
    if (cmd == "adapt") return adaptCmd(flags);
    std::cerr << "usage: xdgp_cli --cmd=generate|partition|adapt [options]\n"
                 "  generate:  --dataset=<table1 name> --out=<edge list>\n"
                 "  partition: --graph=<edge list> --strategy=HSH|RND|DGR|MNN|METIS"
                 " --k=9 --out=<part file>\n"
                 "  adapt:     --graph=<edge list> [--assignment=<part file> |"
                 " --strategy=... --k=9] --s=0.5 [--balance=edges] --out=<part"
                 " file>\n";
    return 1;
  } catch (const std::exception& error) {
    std::cerr << "xdgp_cli: " << error.what() << "\n";
    return 1;
  }
}
