// Live repartitioning side-by-side: the same growth stream feeds a static
// hash-partitioned system and an adaptive one; the table shows the cut
// ratio diverging window by window as the graph evolves — the paper's core
// claim in one terminal screen, driven entirely by the streaming API
// (api::WorkloadRegistry + Session::stream, no hand-wired ingest loop).
//
//   build/examples/repartition_live

#include <iostream>

#include "api/pipeline.h"
#include "api/workload_registry.h"
#include "util/table.h"

int main() {
  using namespace xdgp;

  // A 2-D FEM grown by one-third through forest-fire arrivals (new vertices
  // attach locally, like most real growth) — the FFIRE registry workload.
  api::WorkloadConfig config;
  config.seed = 7;
  api::Workload workload = api::WorkloadRegistry::instance().make("FFIRE", config);
  const std::size_t k = 9;

  const auto startSession = [&] {
    return api::Pipeline::fromGraph(workload.initial)  // copies the base mesh
        .initial("HSH")
        .k(k)
        .seed(1)
        .adaptive()
        .start();
  };
  api::Session staticSession = startSession();
  api::Session adaptiveSession = startSession();

  // Identical windows for both arms; the static one applies the stream but
  // never adapts (StreamOptions::adapt = false), exactly the system the
  // paper's §1 describes eroding under growth.
  api::StreamOptions staticOptions = workload.suggested;
  staticOptions.adapt = false;
  const api::TimelineReport staticTimeline =
      staticSession.stream(workload.stream, staticOptions);
  const api::TimelineReport adaptiveTimeline =
      adaptiveSession.stream(workload.stream, workload.suggested);

  std::cout << "Growing FEM, static hash vs adaptive (k=" << k << ")\n"
            << "(the FFIRE stream grows the mesh from "
            << workload.initial.numVertices() << " vertices in "
            << staticTimeline.windows.size()
            << " bursts; the adaptive arm re-converges each window)\n\n";
  util::TablePrinter table({"window", "|V|", "|E|", "cuts static",
                            "cuts adaptive", "migrations", "iterations"});
  for (std::size_t i = 0; i < adaptiveTimeline.windows.size(); ++i) {
    const api::WindowReport& fixed = staticTimeline.windows[i];
    const api::WindowReport& adapted = adaptiveTimeline.windows[i];
    table.addRow({std::to_string(adapted.index), std::to_string(adapted.vertices),
                  std::to_string(adapted.edges), util::fmt(fixed.cutRatio, 3),
                  util::fmt(adapted.cutRatio, 3),
                  std::to_string(adapted.migrations),
                  std::to_string(adapted.iterations)});
  }
  table.print(std::cout);
  std::cout << "\nThe adaptive system keeps neighbours co-located as the graph\n"
               "grows, so its cut ratio stays low while the static hash\n"
               "partitioning erodes exactly as §1 predicts. Fewer cut edges\n"
               "means proportionally cheaper supersteps on the BSP engine\n"
               "(see bench/fig8_twitter for the modelled-time comparison).\n";
  return 0;
}
