// Live repartitioning side-by-side: the same growth stream feeds a static
// hash-partitioned system and an adaptive one; the table shows cut ratio and
// modelled iteration time diverging as the graph evolves — the paper's core
// claim in one terminal screen.
//
//   build/examples/repartition_live

#include <iostream>

#include "api/partitioner_registry.h"
#include "apps/pagerank.h"
#include "gen/forest_fire.h"
#include "gen/mesh2d.h"
#include "graph/update_stream.h"
#include "pregel/engine.h"
#include "util/table.h"

int main() {
  using namespace xdgp;

  // Start with a 2-D FEM and grow it by one-third through forest-fire
  // arrivals (new vertices attach locally, like most real growth).
  graph::DynamicGraph base = gen::mesh2d(64, 64);
  graph::DynamicGraph future = base;
  util::Rng fire(7);
  std::vector<graph::UpdateEvent> stream;
  for (int i = 0; i < 8; ++i) {
    // One burst per future batch, timestamped by batch index.
    const auto burst =
        gen::forestFireExtension(future, 170, {}, fire, static_cast<double>(i));
    stream.insert(stream.end(), burst.begin(), burst.end());
  }

  const std::size_t k = 9;
  const metrics::Assignment initial =
      api::initialAssignment(base, "HSH", k, 1.1, /*seed=*/1);

  pregel::EngineOptions staticOptions;
  staticOptions.numWorkers = k;
  pregel::EngineOptions adaptiveOptions = staticOptions;
  adaptiveOptions.adaptive = true;

  apps::PageRankProgram app;
  app.setNumVertices(base.numVertices());
  pregel::Engine<apps::PageRankProgram> staticEngine(base, initial, staticOptions,
                                                     app);
  pregel::Engine<apps::PageRankProgram> adaptiveEngine(base, initial,
                                                       adaptiveOptions, app);

  std::cout << "PageRank over a growing FEM: static hash vs adaptive\n"
            << "(the stream grows the mesh from " << base.numVertices()
            << " vertices; 20 supersteps between batches)\n\n";
  util::TablePrinter table({"batch", "|V|", "cuts static", "cuts adaptive",
                            "time static", "time adaptive", "speedup"});

  graph::UpdateStream staticFeed(stream), adaptiveFeed(stream);
  for (int batchIndex = 0; batchIndex <= 8; ++batchIndex) {
    const double until = batchIndex - 0.5;
    staticEngine.ingest(staticFeed.drainUntil(until));
    adaptiveEngine.ingest(adaptiveFeed.drainUntil(until));
    adaptiveEngine.rescalePartitionerCapacity();  // graph grew: re-provision
    double staticTime = 0.0, adaptiveTime = 0.0;
    for (int s = 0; s < 20; ++s) {
      staticTime += staticEngine.runSuperstep().modeledTime;
      adaptiveTime += adaptiveEngine.runSuperstep().modeledTime;
    }
    table.addRow({std::to_string(batchIndex),
                  std::to_string(staticEngine.graph().numVertices()),
                  util::fmt(staticEngine.cutRatio(), 3),
                  util::fmt(adaptiveEngine.cutRatio(), 3),
                  util::fmt(staticTime, 0), util::fmt(adaptiveTime, 0),
                  util::fmt(staticTime / adaptiveTime, 2) + "x"});
  }
  table.print(std::cout);
  std::cout << "\nThe adaptive system keeps neighbours co-located as the graph\n"
               "grows, so its PageRank supersteps stay cheap; the static system\n"
               "stays at the hash-partitioned cut exactly as §1 predicts.\n";
  return 0;
}
