// Online social network analysis (§4.3, Fig. 8 workload): TunkRank influence
// over a live tweet-mention stream, on the Pregel-like engine with the
// adaptive partitioner running in the background.
//
//   build/examples/social_stream_tunkrank

#include <algorithm>
#include <iostream>
#include <vector>

#include "api/partitioner_registry.h"
#include "apps/tunkrank.h"
#include "gen/tweet_stream.h"
#include "graph/update_stream.h"
#include "pregel/engine.h"
#include "util/table.h"

int main() {
  using namespace xdgp;

  // A morning of tweets over a 5k-user universe.
  gen::TweetStreamParams params;
  params.users = 5'000;
  params.meanRate = 5.0;
  params.hours = 6.0;
  gen::TweetStreamGenerator generator(params, util::Rng(42));
  graph::UpdateStream stream(generator.generate());
  std::cout << "streaming " << stream.size() << " mentions over "
            << params.hours << " simulated hours\n\n";

  // Engine: 9 workers, adaptive partitioning on.
  graph::DynamicGraph base;
  for (graph::VertexId v = 0; v < params.users; ++v) base.ensureVertex(v);
  pregel::EngineOptions options;
  options.numWorkers = 9;
  options.adaptive = true;
  pregel::Engine<apps::TunkRankProgram> engine(
      base, api::initialAssignment(base, "HSH", 9, 1.1, /*seed=*/1), options);

  // Consume the stream in 30-minute buckets, a few supersteps per bucket —
  // the influence ranking follows the graph as it grows.
  const double bucket = 1'800.0;
  for (double now = bucket; now <= params.hours * 3600.0; now += bucket) {
    engine.ingest(stream.drainUntil(now));
    engine.runSupersteps(4);
    const auto& stats = engine.history().back();
    std::cout << "t=" << util::fmt(now / 3600.0, 1) << "h  edges="
              << engine.graph().numEdges() << "  cut ratio="
              << util::fmt(engine.cutRatio(), 3) << "  superstep time="
              << util::fmt(stats.modeledTime, 0) << " units"
              << (engine.partitionerConverged() ? "  [partitioning settled]" : "")
              << "\n";
  }

  // Final influence ranking.
  struct Ranked {
    graph::VertexId user;
    double influence;
  };
  std::vector<Ranked> ranking;
  engine.graph().forEachVertex([&](graph::VertexId v) {
    ranking.push_back({v, engine.value(v)});
  });
  std::sort(ranking.begin(), ranking.end(),
            [](const Ranked& a, const Ranked& b) { return a.influence > b.influence; });

  std::cout << "\ntop influencers (TunkRank)\n";
  util::TablePrinter table({"user", "influence", "mentions (degree)"});
  for (std::size_t i = 0; i < 10 && i < ranking.size(); ++i) {
    table.addRow({"user-" + std::to_string(ranking[i].user),
                  util::fmt(ranking[i].influence, 2),
                  std::to_string(engine.graph().degree(ranking[i].user))});
  }
  table.print(std::cout);
  return 0;
}
