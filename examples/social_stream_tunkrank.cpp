// Online social network analysis (§4.3, Fig. 8 workload): TunkRank influence
// over a live tweet-mention stream, on the Pregel-like engine with the
// adaptive partitioner running in the background. The stream comes from
// api::WorkloadRegistry ("TWEET") and the 30-minute bucketing from
// api::Streamer — this example only runs the supersteps per window.
//
//   build/examples/social_stream_tunkrank

#include <algorithm>
#include <iostream>
#include <thread>
#include <vector>

#include "api/partitioner_registry.h"
#include "api/stream.h"
#include "api/workload_registry.h"
#include "apps/tunkrank.h"
#include "pregel/engine.h"
#include "util/table.h"

int main() {
  using namespace xdgp;

  // A morning of tweets over a 5k-user universe (the registry's defaults).
  api::Workload workload = api::WorkloadRegistry::instance().make("TWEET", {});
  std::cout << "streaming " << workload.stream.size() << " mentions over "
            << workload.stream.events().back().timestamp / 3600.0
            << " simulated hours\n\n";

  // Engine: 9 workers, adaptive partitioning on, compute phase sharded over
  // the host's cores (the ranking is bit-identical at any thread count).
  pregel::EngineOptions options;
  options.numWorkers = 9;
  options.adaptive = true;
  options.threads = std::max(1u, std::thread::hardware_concurrency());
  pregel::Engine<apps::TunkRankProgram> engine(
      workload.initial,
      api::initialAssignment(workload.initial, "HSH", 9, 1.1, /*seed=*/1),
      options);

  // Consume the stream in 30-minute buckets, a few supersteps per bucket —
  // the influence ranking follows the graph as it grows. (No expiry here:
  // the example ranks the whole morning, not a sliding window.)
  api::StreamOptions streamOptions;
  streamOptions.windowSpan = 1'800.0;
  api::Streamer streamer(std::move(workload.stream), streamOptions);
  while (auto batch = streamer.next()) {
    engine.ingest(batch->events);
    engine.runSupersteps(4);
    const auto& stats = engine.history().back();
    std::cout << "t=" << util::fmt(batch->end / 3600.0, 1) << "h  edges="
              << engine.graph().numEdges() << "  cut ratio="
              << util::fmt(engine.cutRatio(), 3) << "  superstep time="
              << util::fmt(stats.modeledTime, 0) << " units"
              << (engine.partitionerConverged() ? "  [partitioning settled]" : "")
              << "\n";
  }

  // Final influence ranking.
  struct Ranked {
    graph::VertexId user;
    double influence;
  };
  std::vector<Ranked> ranking;
  engine.graph().forEachVertex([&](graph::VertexId v) {
    ranking.push_back({v, engine.value(v)});
  });
  std::sort(ranking.begin(), ranking.end(),
            [](const Ranked& a, const Ranked& b) { return a.influence > b.influence; });

  std::cout << "\ntop influencers (TunkRank)\n";
  util::TablePrinter table({"user", "influence", "mentions (degree)"});
  for (std::size_t i = 0; i < 10 && i < ranking.size(); ++i) {
    table.addRow({"user-" + std::to_string(ranking[i].user),
                  util::fmt(ranking[i].influence, 2),
                  std::to_string(engine.graph().degree(ranking[i].user))});
  }
  table.print(std::cout);
  return 0;
}
