// Mobile network communications (§4.3, Fig. 9 workload): maximal cliques on
// a dynamic call graph. The topology freezes during each clique computation
// and the buffered stream changes apply in batches between rounds.
//
//   build/examples/call_graph_cliques

#include <algorithm>
#include <iostream>
#include <map>
#include <thread>

#include "api/partitioner_registry.h"
#include "apps/max_clique.h"
#include "gen/cdr_stream.h"
#include "pregel/engine.h"
#include "util/table.h"

int main() {
  using namespace xdgp;

  gen::CdrStreamParams params;
  params.initialSubscribers = 5'000;
  gen::CdrStreamGenerator cdr(params, util::Rng(42));
  const graph::DynamicGraph& base = cdr.initialGraph();
  std::cout << "call graph: " << base.numVertices() << " subscribers, "
            << base.numEdges() << " reciprocated ties (mean degree "
            << util::fmt(base.averageDegree(), 1) << ")\n"
            << "weekly churn: +" << 100 * params.weeklyAddRate << "% / -"
            << 100 * params.weeklyRemoveRate << "% of subscribers (the paper's rates)\n\n";

  pregel::EngineOptions options;
  options.numWorkers = 5;
  options.adaptive = true;
  // The clique rounds exchange whole neighbour lists — the heaviest compute
  // phase of the three use cases; shard it over the host's cores.
  options.threads = std::max(1u, std::thread::hardware_concurrency());
  pregel::Engine<apps::MaxCliqueProgram> engine(
      base, api::initialAssignment(base, "HSH", 5, 1.1, /*seed=*/1), options);

  util::TablePrinter table({"week", "subscribers", "ties", "max clique",
                            "clique-size histogram (size:count)", "cut ratio"});
  for (std::size_t week = 1; week <= 4; ++week) {
    const gen::CdrWeek batch = cdr.nextWeek();

    // Freeze, compute cliques on the frozen snapshot, thaw to apply churn.
    engine.freezeTopology();
    engine.ingest(batch.events);  // buffered until the result is out
    engine.runSupersteps(2);      // neighbour-list exchange + ego solve
    std::size_t maxClique = 0;
    std::map<std::size_t, std::size_t> histogram;
    engine.graph().forEachVertex([&](graph::VertexId v) {
      const std::size_t size = engine.value(v).cliqueSize;
      maxClique = std::max(maxClique, size);
      ++histogram[size];
    });
    engine.thawTopology();
    engine.rescalePartitionerCapacity();
    engine.runSupersteps(10);  // adaptation catches up with the batch

    std::string histText;
    for (const auto& [size, count] : histogram) {
      if (size >= maxClique - 2) {
        histText += std::to_string(size) + ":" + std::to_string(count) + " ";
      }
    }
    table.addRow({"week " + std::to_string(week),
                  std::to_string(engine.graph().numVertices()),
                  std::to_string(engine.graph().numEdges()),
                  std::to_string(maxClique), histText,
                  util::fmt(engine.cutRatio(), 3)});
  }
  table.print(std::cout);
  std::cout << "\nCliques are found from neighbour-list exchange alone (two\n"
               "supersteps per round) while vertices keep migrating underneath —\n"
               "the deferred protocol guarantees no list ever goes missing.\n";
  return 0;
}
