// Biomedical simulation (§4.3, Fig. 7 workload): excitable cardiac tissue on
// a 3-D FEM, with the real reaction-diffusion kernel integrated per vertex.
// Prints an ASCII rendering of the membrane potential on a mid-slab slice so
// you can watch the excitation wave travel while the partitioner works.
//
//   build/examples/biomedical_mesh

#include <algorithm>
#include <iostream>
#include <thread>

#include "api/partitioner_registry.h"
#include "apps/cardiac.h"
#include "gen/mesh3d.h"
#include "pregel/engine.h"
#include "util/table.h"

int main() {
  using namespace xdgp;
  const std::size_t nx = 24, ny = 24, nz = 24;
  graph::DynamicGraph mesh = gen::mesh3d(nx, ny, nz);
  std::cout << "cardiac slab: " << nx << "x" << ny << "x" << nz << " = "
            << mesh.numVertices() << " cells, " << mesh.numEdges()
            << " gap junctions\n\n";

  apps::CardiacProgram program;
  program.stimulusWidth = static_cast<graph::VertexId>(nx * ny);  // pace z=0 face

  pregel::EngineOptions options;
  options.numWorkers = 9;
  options.adaptive = true;
  // Sharded compute phase on all available cores; the simulation (and every
  // number printed below) is bit-identical at any thread count.
  options.threads = std::max(1u, std::thread::hardware_concurrency());
  pregel::Engine<apps::CardiacProgram> engine(
      mesh, api::initialAssignment(mesh, "HSH", 9, 1.1, /*seed=*/42), options,
      program);

  const double t0 = engine.runSuperstep().modeledTime;  // hash baseline

  // Render the y = ny/2 slice: x rightwards, z downwards.
  const auto renderSlice = [&] {
    const char* shades = " .:-=+*#%@";
    for (std::size_t z = 0; z < nz; z += 2) {
      std::cout << "    ";
      for (std::size_t x = 0; x < nx; ++x) {
        const auto id = gen::mesh3dId(nx, ny, x, ny / 2, z);
        const double v = engine.value(id).voltage;          // FHN range ~[-2, 2]
        const int level = std::clamp(static_cast<int>((v + 2.0) / 4.0 * 9.0), 0, 9);
        std::cout << shades[level];
      }
      std::cout << '\n';
    }
  };

  for (int frame = 1; frame <= 6; ++frame) {
    engine.runSupersteps(40);
    const auto& stats = engine.history().back();
    std::cout << "superstep " << engine.superstepIndex()
              << "  (cut ratio " << util::fmt(engine.cutRatio(), 2)
              << ", time/iteration " << util::fmt(stats.modeledTime / t0, 2)
              << "x of hash baseline"
              << (engine.partitionerConverged() ? ", partitioning settled)" : ")")
              << "\n";
    renderSlice();
    std::cout << '\n';
  }

  std::cout << "The wave propagates from the paced face while the background\n"
               "partitioner cuts " << util::fmt(engine.cutRatio(), 2)
            << " of edges (hash started at ~0.89), so most gap-junction\n"
               "messages now stay worker-local.\n";
  return 0;
}
