// Quickstart: partition a graph, let the adaptive algorithm improve it, and
// watch it absorb a topology change — the library's core loop in ~60 lines.
//
//   build/examples/quickstart

#include <iostream>

#include "core/adaptive_engine.h"
#include "gen/forest_fire.h"
#include "gen/mesh3d.h"
#include "graph/csr.h"
#include "partition/partitioner.h"
#include "util/table.h"

int main() {
  using namespace xdgp;

  // 1) A graph: a 3-D finite-element mesh (any DynamicGraph works).
  graph::DynamicGraph mesh = gen::mesh3d(20, 20, 20);
  std::cout << "graph: " << mesh.numVertices() << " vertices, " << mesh.numEdges()
            << " edges\n";

  // 2) An initial partitioning: hash, the cheap default every large-scale
  //    system starts with (and the one with the worst cut).
  const std::size_t k = 9;
  util::Rng rng(42);
  metrics::Assignment initial = partition::makePartitioner("HSH")->partition(
      graph::CsrGraph::fromGraph(mesh), k, /*capacityFactor=*/1.1, rng);

  // 3) The adaptive engine: iterative greedy vertex migration with capacity
  //    quotas and willingness s = 0.5 (the paper's §2 algorithm).
  core::AdaptiveOptions options;
  options.k = k;
  core::AdaptiveEngine engine(std::move(mesh), std::move(initial), options);

  std::cout << "initial cut ratio:   " << util::fmt(engine.cutRatio(), 3)
            << "  (fraction of edges crossing partitions)\n";

  const core::ConvergenceResult result = engine.runToConvergence();
  std::cout << "converged cut ratio: " << util::fmt(engine.cutRatio(), 3)
            << "  after " << result.convergenceIteration << " iterations\n";

  // 4) Dynamic graphs are the point: inject +10% vertices in one burst (a
  //    forest-fire growth) and let the partitioning adapt.
  graph::DynamicGraph grown = engine.graph();
  util::Rng fire(7);
  const auto events =
      gen::forestFireExtension(grown, grown.numVertices() / 10, {}, fire);
  engine.applyUpdates(events);
  engine.rescaleCapacity();
  std::cout << "after +10% injection: " << util::fmt(engine.cutRatio(), 3) << "\n";

  engine.runToConvergence();
  std::cout << "re-converged:         " << util::fmt(engine.cutRatio(), 3)
            << "  (peak absorbed)\n";

  // 5) Balance is maintained throughout: the capacity cap is 110% of the
  //    balanced load.
  std::cout << "partition loads:      ";
  for (std::size_t i = 0; i < k; ++i) std::cout << engine.state().load(i) << ' ';
  std::cout << "\n";
  return 0;
}
