// Quickstart: partition a graph, let the adaptive algorithm improve it, and
// watch it absorb a topology change — the library's core loop in ~50 lines,
// driven entirely through the api::Pipeline front door.
//
//   build/examples/quickstart

#include <iostream>

#include "api/pipeline.h"
#include "gen/forest_fire.h"
#include "gen/mesh3d.h"
#include "util/table.h"

int main() {
  using namespace xdgp;

  // 1) A graph: a 3-D finite-element mesh (any DynamicGraph works; edge-list
  //    files and Table-1 datasets come in via Pipeline::fromEdgeList /
  //    ::fromDataset).
  graph::DynamicGraph mesh = gen::mesh3d(20, 20, 20);
  std::cout << "graph: " << mesh.numVertices() << " vertices, " << mesh.numEdges()
            << " edges\n";

  // 2) The pipeline: hash initial partitioning (the cheap default every
  //    large-scale system starts with — and the one with the worst cut),
  //    then the paper's §2 adaptive algorithm. start() hands back a live
  //    Session instead of running to completion, because step 4 will keep
  //    mutating the graph.
  const std::size_t k = 9;
  api::Session session = api::Pipeline::fromGraph(std::move(mesh))
                             .initial("HSH")
                             .k(k)
                             .seed(42)
                             .adaptive()
                             .start();

  std::cout << "initial cut ratio:   " << util::fmt(session.cutRatio(), 3)
            << "  (fraction of edges crossing partitions)\n";

  const core::ConvergenceResult result = session.runToConvergence();
  std::cout << "converged cut ratio: " << util::fmt(session.cutRatio(), 3)
            << "  after " << result.convergenceIteration << " iterations\n";

  // 3) Dynamic graphs are the point: inject +10% vertices in one burst (a
  //    forest-fire growth) and let the partitioning adapt.
  graph::DynamicGraph grown = session.engine().graph();
  util::Rng fire(7);
  const auto events =
      gen::forestFireExtension(grown, grown.numVertices() / 10, {}, fire);
  session.applyUpdates(events);
  session.rescaleCapacity();
  std::cout << "after +10% injection: " << util::fmt(session.cutRatio(), 3) << "\n";

  session.runToConvergence();
  std::cout << "re-converged:         " << util::fmt(session.cutRatio(), 3)
            << "  (peak absorbed)\n";

  // 4) The structured report collects what the run did: cut before/after,
  //    balance, convergence, wall time — the same object the CLI renders.
  const api::RunReport report = session.report();
  std::cout << "balance: imbalance " << util::fmt(report.finalBalance.imbalance, 3)
            << " (capacity cap 110% of the balanced load), converged="
            << (report.converged ? "yes" : "no") << "\n";
  return 0;
}
